// On-disk layout compatibility: the v1 (packed AoS) and v2 (SoA) node
// formats must be interchangeable at every seam.  Covers the full
// QueryStats identity matrix (v1/v2 × scalar/SIMD), a committed golden v1
// device file attached read-only and compared against a v2 rebuild, mixed
// v1/v2 trees produced by updating a v1 tree under a v2 default, snapshot
// round-trips that preserve per-node layout, and the zeroed-tail
// determinism contract of BasicNodeView::Format.

#include "rtree/node.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <tuple>
#include <vector>

#include "core/prtree.h"
#include "geom/rect_batch.h"
#include "io/file_block_device.h"
#include "rtree/knn.h"
#include "rtree/persist.h"
#include "rtree/update.h"
#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

// The committed golden file and the parameters it was generated from.
// DISABLED_RegenerateGoldenFile rewrites it in the source tree if the
// format ever changes intentionally; everything here must keep reading
// the old bytes until then.
constexpr char kGoldenName[] = "/golden_v1_tree.bin";
constexpr size_t kGoldenN = 1500;
constexpr uint64_t kGoldenSeed = 71;

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (ForceSimdLevel(l) == l) levels.push_back(l);
  }
  ForceSimdLevel(SimdLevel::kScalar);
  return levels;
}

// Pins the process-wide default layout for new nodes; restores on scope
// exit so test order cannot leak one test's layout into another.
class ScopedLayout {
 public:
  explicit ScopedLayout(NodeLayout l) : prev_(SetDefaultNodeLayout(l)) {}
  ~ScopedLayout() { SetDefaultNodeLayout(prev_); }

 private:
  NodeLayout prev_;
};

std::tuple<uint64_t, uint64_t, uint64_t, uint64_t> StatsTuple(
    const QueryStats& qs) {
  return {qs.nodes_visited, qs.internal_visited, qs.leaves_visited,
          qs.results};
}

uint64_t Bits(Real v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Counts formatted node pages of each layout on a memory device.
std::pair<int, int> CountLayouts(MemoryBlockDevice* dev) {
  std::vector<std::byte> buf(dev->block_size());
  int v1 = 0, v2 = 0;
  for (PageId p = 0; p < dev->num_allocated(); ++p) {
    if (!dev->Read(p, buf.data()).ok()) continue;
    ConstNodeView<2> node(buf.data(), buf.size());
    if (!node.IsFormatted()) continue;
    (node.layout() == NodeLayout::kAoS ? v1 : v2)++;
  }
  return {v1, v2};
}

class NodeLayoutCompatTest : public ::testing::Test {
 protected:
  void TearDown() override { ForceSimdLevel(SimdLevel::kScalar); }
};

// The tentpole contract as a test: identical data bulk-loaded under v1
// and v2 must yield the same tree shape, and every (layout, simd)
// combination must report byte-identical QueryStats, result sets, and
// kNN distance bits.
TEST_F(NodeLayoutCompatTest, QueryStatsMatrixAcrossLayoutsAndSimd) {
  auto data = RandomRects<2>(6000, 29);

  MemoryBlockDevice dev_v1, dev_v2;
  RTree<2> tree_v1(&dev_v1), tree_v2(&dev_v2);
  {
    ScopedLayout pin(NodeLayout::kAoS);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_v1, 4u << 20}, data,
                                   &tree_v1));
  }
  {
    ScopedLayout pin(NodeLayout::kSoA);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev_v2, 4u << 20}, data,
                                   &tree_v2));
  }
  ASSERT_EQ(tree_v1.height(), tree_v2.height());
  ASSERT_EQ(dev_v1.num_allocated(), dev_v2.num_allocated());
  ASSERT_TRUE(ValidateTree(tree_v1).ok());
  ASSERT_TRUE(ValidateTree(tree_v2).ok());

  Rng rng(31);
  std::vector<Rect2> windows;
  for (int q = 0; q < 24; ++q) windows.push_back(RandomWindow<2>(&rng, 0.2));
  std::vector<std::array<Real, 2>> points;
  for (int q = 0; q < 16; ++q) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }

  // Reference leg: v1 + scalar.
  ASSERT_EQ(ForceSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>> ref_stats;
  std::vector<std::vector<DataId>> ref_ids;
  std::vector<std::vector<std::pair<DataId, uint64_t>>> ref_knn;
  for (const auto& w : windows) {
    std::vector<Record2> out;
    QueryStats qs = tree_v1.Query(w, [&](const Record2& r) {
      out.push_back(r);
    });
    ref_stats.push_back(StatsTuple(qs));
    ref_ids.push_back(SortedIds(out));
    EXPECT_EQ(ref_ids.back(), BruteForceQuery(data, w));
  }
  for (const auto& p : points) {
    std::vector<std::pair<DataId, uint64_t>> nn;
    for (const auto& n : KnnSearch<2>(tree_v1, p, 10)) {
      nn.emplace_back(n.record.id, Bits(n.distance));
    }
    ref_knn.push_back(nn);
  }

  for (RTree<2>* tree : {&tree_v1, &tree_v2}) {
    for (SimdLevel level : AvailableLevels()) {
      ASSERT_EQ(ForceSimdLevel(level), level);
      const char* leg = (tree == &tree_v1) ? "v1" : "v2";
      for (size_t q = 0; q < windows.size(); ++q) {
        std::vector<Record2> out;
        QueryStats qs = tree->Query(windows[q], [&](const Record2& r) {
          out.push_back(r);
        });
        EXPECT_EQ(StatsTuple(qs), ref_stats[q])
            << leg << "/" << SimdLevelName(level) << " window " << q;
        EXPECT_EQ(SortedIds(out), ref_ids[q])
            << leg << "/" << SimdLevelName(level) << " window " << q;
      }
      for (size_t q = 0; q < points.size(); ++q) {
        std::vector<std::pair<DataId, uint64_t>> nn;
        for (const auto& n : KnnSearch<2>(*tree, points[q], 10)) {
          nn.emplace_back(n.record.id, Bits(n.distance));
        }
        EXPECT_EQ(nn, ref_knn[q])
            << leg << "/" << SimdLevelName(level) << " knn " << q;
      }
    }
  }
}

// A v1 tree updated while the process default is v2 grows v2 pages next
// to its v1 pages; readers must branch per node and stay correct.
TEST_F(NodeLayoutCompatTest, MixedLayoutTreeAfterUpdates) {
  auto data = RandomRects<2>(2000, 43);
  MemoryBlockDevice dev;
  RTree<2> tree(&dev);
  {
    ScopedLayout pin(NodeLayout::kAoS);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  }
  auto [v1_before, v2_before] = CountLayouts(&dev);
  EXPECT_GT(v1_before, 0);
  EXPECT_EQ(v2_before, 0);

  ScopedLayout pin(NodeLayout::kSoA);
  RTreeUpdater<2> upd(&tree);
  auto all = data;
  auto extra = RandomRects<2>(800, 47);
  for (auto rec : extra) {
    rec.id += 1000000;
    upd.Insert(rec);
    all.push_back(rec);
  }
  // Deletes descend through CoversMask over both layouts.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(upd.Delete(data[i * 7]));
    all.erase(std::find_if(all.begin(), all.end(), [&](const Record2& r) {
      return r.id == data[i * 7].id;
    }));
  }
  ValidateOptions vopts;
  vopts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, vopts).ok());

  auto [v1_after, v2_after] = CountLayouts(&dev);
  EXPECT_GT(v1_after, 0) << "expected surviving v1 pages";
  EXPECT_GT(v2_after, 0) << "expected freshly written v2 pages";

  Rng rng(53);
  for (int q = 0; q < 20; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(all, w));
  }
}

// Snapshots copy raw blocks, so a mixed-layout tree stays mixed across a
// SaveTree/LoadTree round trip, regardless of the loader's default.
TEST_F(NodeLayoutCompatTest, SnapshotRoundTripPreservesPerNodeLayout) {
  std::string path = ::testing::TempDir() + "/prtree_layout_snap." +
                     std::to_string(static_cast<long>(getpid())) + ".bin";
  auto data = RandomRects<2>(1200, 59);
  MemoryBlockDevice dev;
  RTree<2> tree(&dev);
  {
    ScopedLayout pin(NodeLayout::kAoS);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, data, &tree));
  }
  ASSERT_TRUE(SaveTree(tree, path).ok());

  ScopedLayout pin(NodeLayout::kSoA);  // loader default must not rewrite
  MemoryBlockDevice dev2;
  RTree<2> loaded(&dev2);
  ASSERT_TRUE(LoadTree(path, &loaded).ok());
  std::remove(path.c_str());

  auto [v1, v2] = CountLayouts(&dev2);
  EXPECT_GT(v1, 0);
  EXPECT_EQ(v2, 0) << "snapshot load must preserve the stored v1 layout";
  ASSERT_TRUE(ValidateTree(loaded).ok());
  Rng rng(61);
  for (int q = 0; q < 10; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(loaded.QueryToVector(w)),
              SortedIds(tree.QueryToVector(w)));
  }
}

// Formatting is a determinism contract, not just initialisation: the
// same Format+Append sequence on a garbage-filled recycled buffer must
// produce bytes identical to a fresh buffer, for both layouts (this is
// what makes parallel-build output and persisted files byte-stable).
// v2 additionally re-zeroes the slot RemoveSwap vacates.
TEST_F(NodeLayoutCompatTest, FormatZeroesTailDeterministically) {
  auto data = RandomRects<2>(40, 67);
  for (NodeLayout layout : {NodeLayout::kAoS, NodeLayout::kSoA}) {
    std::vector<std::byte> fresh(kDefaultBlockSize, std::byte{0});
    std::vector<std::byte> dirty(kDefaultBlockSize, std::byte{0xAB});
    for (auto* buf : {&fresh, &dirty}) {
      NodeView<2> node(buf->data(), buf->size());
      node.Format(0, layout);
      for (const auto& rec : data) node.Append(rec.rect, rec.id);
    }
    EXPECT_EQ(std::memcmp(fresh.data(), dirty.data(), fresh.size()), 0)
        << "layout " << static_cast<int>(layout);

    if (layout == NodeLayout::kSoA) {
      // RemoveSwap(i) leaves the same bytes as never having appended the
      // removed entry in that position at all.
      NodeView<2> node(dirty.data(), dirty.size());
      node.RemoveSwap(7);
      NodeView<2> expect(fresh.data(), fresh.size());
      expect.Format(0, layout);
      // Rebuild the post-RemoveSwap logical sequence explicitly: the last
      // entry moves into slot 7 and the count shrinks by one.
      std::vector<Record2> seq;
      for (int i = 0; i < 40; ++i) seq.push_back(data[i]);
      seq[7] = seq.back();
      seq.pop_back();
      for (const auto& rec : seq) expect.Append(rec.rect, rec.id);
      EXPECT_EQ(std::memcmp(fresh.data(), dirty.data(), fresh.size()), 0)
          << "v2 RemoveSwap left stale bytes in the vacated slot";
    }
  }
}

// ---- golden v1 device file --------------------------------------------

class GoldenFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    golden_ = std::string(PRTREE_TEST_DATA_DIR) + kGoldenName;
    copy_ = ::testing::TempDir() + "/prtree_golden_copy." +
            std::to_string(static_cast<long>(getpid())) + ".bin";
  }
  void TearDown() override {
    std::remove(copy_.c_str());
    ForceSimdLevel(SimdLevel::kScalar);
  }

  // The device may dirty its file (superblock rewrites on close), so the
  // committed golden bytes are never opened directly.
  void CopyGoldenToTemp() {
    std::ifstream in(golden_, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << golden_
                           << " — run DISABLED_RegenerateGoldenFile";
    std::ofstream out(copy_, std::ios::binary);
    out << in.rdbuf();
    ASSERT_TRUE(out.good());
  }

  std::string golden_;
  std::string copy_;
};

// A device file persisted by the v1-era writer keeps attaching and keeps
// answering queries identically to a v2 rebuild of the same data — the
// no-migration guarantee for the versioned format.
TEST_F(GoldenFileTest, AttachedV1FileMatchesV2Rebuild) {
  CopyGoldenToTemp();
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(copy_, FileDeviceOptions{}, &dev).ok());
  RTree<2> attached(dev.get());
  ASSERT_TRUE(AttachTree(dev.get(), &attached).ok());
  ASSERT_EQ(attached.size(), kGoldenN);
  ASSERT_TRUE(ValidateTree(attached).ok());

  // Every page in the golden file is v1.
  {
    std::vector<std::byte> buf(attached.block_size());
    ASSERT_TRUE(dev->Read(attached.root(), buf.data()).ok());
    ConstNodeView<2> root(buf.data(), buf.size());
    EXPECT_EQ(root.layout(), NodeLayout::kAoS);
  }

  auto data = RandomRects<2>(kGoldenN, kGoldenSeed);
  MemoryBlockDevice mdev;  // kDefaultBlockSize, same as the golden file
  RTree<2> rebuilt(&mdev);
  {
    ScopedLayout pin(NodeLayout::kSoA);
    AbortIfError(BulkLoadPrTree<2>(WorkEnv{&mdev, 4u << 20}, data,
                                   &rebuilt));
  }
  ASSERT_EQ(rebuilt.height(), attached.height());

  Rng rng(73);
  for (SimdLevel level : AvailableLevels()) {
    ASSERT_EQ(ForceSimdLevel(level), level);
    for (int q = 0; q < 12; ++q) {
      Rect2 w = RandomWindow<2>(&rng, 0.25);
      std::vector<Record2> a, b;
      QueryStats qa = attached.Query(w, [&](const Record2& r) {
        a.push_back(r);
      });
      QueryStats qb = rebuilt.Query(w, [&](const Record2& r) {
        b.push_back(r);
      });
      EXPECT_EQ(StatsTuple(qa), StatsTuple(qb))
          << SimdLevelName(level) << " window " << q;
      EXPECT_EQ(SortedIds(a), SortedIds(b));
      EXPECT_EQ(SortedIds(a), BruteForceQuery(data, w));
    }
    std::array<Real, 2> p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    auto na = KnnSearch<2>(attached, p, 12);
    auto nb = KnnSearch<2>(rebuilt, p, 12);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].record.id, nb[i].record.id);
      EXPECT_EQ(Bits(na[i].distance), Bits(nb[i].distance));
    }
  }
}

// Not a test: regenerates the committed golden file in the source tree.
// Run explicitly after an intentional v1 format change:
//   node_layout_compat_test --gtest_also_run_disabled_tests
//     --gtest_filter='*RegenerateGoldenFile*'
TEST_F(GoldenFileTest, DISABLED_RegenerateGoldenFile) {
  auto data = RandomRects<2>(kGoldenN, kGoldenSeed);
  FileDeviceOptions opts;
  opts.block_size = kDefaultBlockSize;
  opts.truncate = true;
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(golden_, opts, &dev).ok());
  RTree<2> tree(dev.get());
  ScopedLayout pin(NodeLayout::kAoS);
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{dev.get(), 4u << 20}, data, &tree));
  ASSERT_TRUE(PersistTree(tree, dev.get()).ok());
}

}  // namespace
}  // namespace prtree
