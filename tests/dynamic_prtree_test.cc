#include "core/dynamic_prtree.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

TEST(DynamicPrTreeTest, InsertAndQuerySmall) {
  MemoryBlockDevice dev(4096);
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20});
  index.Insert(Record2{MakeRect(0.1, 0.1, 0.2, 0.2), 1});
  index.Insert(Record2{MakeRect(0.7, 0.7, 0.8, 0.8), 2});
  EXPECT_EQ(index.size(), 2u);
  auto res = index.QueryToVector(MakeRect(0, 0, 0.5, 0.5));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 1u);
}

TEST(DynamicPrTreeTest, BufferFlushCreatesLevels) {
  MemoryBlockDevice dev(512);  // node capacity 13 -> small buffer
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 8;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(100, 3);
  for (const auto& rec : data) index.Insert(rec);
  EXPECT_GE(index.num_levels(), 1u);
  ASSERT_TRUE(index.Validate().ok());
  // Levels respect their geometric capacities.
  auto sizes = index.LevelSizes();
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i], opts.buffer_capacity << (i + 1));
  }
  EXPECT_EQ(SortedIds(index.QueryToVector(MakeRect(-1, -1, 2, 2))),
            BruteForceQuery(data, MakeRect(-1, -1, 2, 2)));
}

TEST(DynamicPrTreeTest, DeleteFromBufferAndLevels) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(200, 5);
  for (const auto& rec : data) index.Insert(rec);
  // Delete odd ids (some in the buffer, most in levels).
  std::vector<Record2> kept;
  for (const auto& rec : data) {
    if (rec.id % 2) {
      EXPECT_TRUE(index.Delete(rec));
    } else {
      kept.push_back(rec);
    }
  }
  EXPECT_EQ(index.size(), kept.size());
  Rect2 all = MakeRect(-1, -1, 2, 2);
  EXPECT_EQ(SortedIds(index.QueryToVector(all)), BruteForceQuery(kept, all));
  EXPECT_FALSE(index.Delete(data[1]));  // already gone
}

TEST(DynamicPrTreeTest, DeleteMissingReturnsFalse) {
  MemoryBlockDevice dev(4096);
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20});
  EXPECT_FALSE(index.Delete(Record2{MakeRect(0, 0, 1, 1), 9}));
  index.Insert(Record2{MakeRect(0.2, 0.2, 0.3, 0.3), 9});
  // Wrong rectangle, right id.
  EXPECT_FALSE(index.Delete(Record2{MakeRect(0.2, 0.2, 0.35, 0.3), 9}));
  EXPECT_EQ(index.size(), 1u);
}

TEST(DynamicPrTreeTest, ReinsertAfterDeleteCancelsTombstone) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 4;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(50, 7);
  for (const auto& rec : data) index.Insert(rec);
  // Force the target record out of the buffer and delete it.
  Record2 victim = data[10];
  ASSERT_TRUE(index.Delete(victim));
  EXPECT_EQ(index.tombstones(), 1u);
  index.Insert(victim);
  EXPECT_EQ(index.tombstones(), 0u);
  EXPECT_EQ(index.size(), data.size());
  auto res = index.QueryToVector(victim.rect);
  bool found = false;
  for (const auto& r : res) {
    if (r.id == victim.id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DynamicPrTreeTest, MassDeletionTriggersGlobalRebuild) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(500, 9);
  for (const auto& rec : data) index.Insert(rec);
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(index.Delete(data[i]));
  }
  // Tombstones never exceed live records.
  EXPECT_LE(index.tombstones(), index.size());
  EXPECT_EQ(index.size(), 100u);
  std::vector<Record2> kept(data.begin() + 400, data.end());
  Rect2 all = MakeRect(-1, -1, 2, 2);
  EXPECT_EQ(SortedIds(index.QueryToVector(all)), BruteForceQuery(kept, all));
  ASSERT_TRUE(index.Validate().ok());
}

TEST(DynamicPrTreeTest, DeleteEverything) {
  MemoryBlockDevice dev(512);
  size_t baseline = dev.num_allocated();
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 8;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(300, 11);
  for (const auto& rec : data) index.Insert(rec);
  for (const auto& rec : data) ASSERT_TRUE(index.Delete(rec));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.QueryToVector(MakeRect(-1, -1, 2, 2)).empty());
  // The global rebuild reclaims all blocks once everything is gone.
  EXPECT_EQ(dev.num_allocated(), baseline);
}

TEST(DynamicPrTreeTest, MoveSameIdRepeatedly) {
  // Regression: the moving-objects pattern — delete id, re-insert it at a
  // new position, delete it again.  A tombstone keyed by id alone would
  // block the second delete.
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 4;  // force records out of the buffer quickly
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  Rng rng(17);
  std::vector<Record2> pos(50);
  for (DataId id = 0; id < 50; ++id) {
    double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    pos[id] = Record2{MakeRect(x, y, x, y), id};
    index.Insert(pos[id]);
  }
  for (int step = 0; step < 500; ++step) {
    DataId id = static_cast<DataId>(rng.UniformInt(0, 49));
    ASSERT_TRUE(index.Delete(pos[id])) << "step " << step;
    double x = rng.Uniform(0, 1), y = rng.Uniform(0, 1);
    pos[id] = Record2{MakeRect(x, y, x, y), id};
    index.Insert(pos[id]);
    ASSERT_EQ(index.size(), 50u);
  }
  auto res = index.QueryToVector(MakeRect(-1, -1, 2, 2));
  EXPECT_EQ(SortedIds(res).size(), 50u);
}

class DynamicFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicFuzzTest, AgreesWithModelUnderMixedWorkload) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 13;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  Rng rng(GetParam());
  std::map<DataId, Record2> model;
  DataId next_id = 0;

  for (int step = 0; step < 2500; ++step) {
    double dice = rng.Uniform(0, 1);
    if (dice < 0.5 || model.empty()) {
      Record2 rec;
      double side = rng.Uniform(0, 0.05);
      rec.rect.lo[0] = rng.Uniform(0, 1 - side);
      rec.rect.lo[1] = rng.Uniform(0, 1 - side);
      rec.rect.hi[0] = rec.rect.lo[0] + side;
      rec.rect.hi[1] = rec.rect.lo[1] + side;
      rec.id = next_id++;
      model[rec.id] = rec;
      index.Insert(rec);
    } else if (dice < 0.8) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      EXPECT_TRUE(index.Delete(it->second)) << "step " << step;
      model.erase(it);
    } else {
      Rect2 w = RandomWindow<2>(&rng, 0.3);
      std::vector<Record2> expect;
      for (const auto& [id, rec] : model) {
        if (rec.rect.Intersects(w)) expect.push_back(rec);
      }
      auto got = SortedIds(index.QueryToVector(w));
      ASSERT_EQ(got, SortedIds(expect)) << "step " << step;
    }
    ASSERT_EQ(index.size(), model.size());
  }
  ASSERT_TRUE(index.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicFuzzTest,
                         ::testing::Values(1, 23, 4096));

TEST(DynamicPrTreeTest, QueryStatsAggregateAcrossLevels) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 8;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(400, 13);
  for (const auto& rec : data) index.Insert(rec);
  QueryStats qs = index.Query(MakeRect(-1, -1, 2, 2), [](const Record2&) {});
  EXPECT_EQ(qs.results, 400u);
  EXPECT_GT(qs.leaves_visited, 0u);
}

}  // namespace
}  // namespace prtree
