// The BulkLoader facade and the parallel bulk-load pipeline's determinism
// contract: same input + same options => byte-identical tree for any
// thread count (rtree/bulk_loader.h).  The byte-for-byte walk below is the
// strongest form of the guarantee — it implies equal stats, MBRs, page
// counts and query answers.  The 8-thread builds double as the TSan smoke
// for the pipeline (this suite is tier1, so the TSan CI job runs it).

#include "rtree/bulk_loader.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rtree/validate.h"
#include "tests/test_util.h"
#include "util/parallel.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::SortedIds;

struct Built {
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<RTree<2>> tree;
  IoStats build_io;
};

Built Build(LoaderKind kind, const std::vector<Record2>& data,
            BuildOptions opts, size_t block_size = 1024) {
  Built out;
  out.device = std::make_unique<MemoryBlockDevice>(block_size);
  out.tree = std::make_unique<RTree<2>>(out.device.get());
  auto loader = MakeBulkLoader<2>(kind, opts);
  Stream<Record2> input(out.device.get());
  input.Append(data);
  input.Flush();
  out.device->ResetStats();
  AbortIfError(loader->Build(out.device.get(), &input, out.tree.get()));
  out.build_io = out.device->stats();
  return out;
}

/// Walks both trees from the root, requiring the same page ids and the
/// same raw bytes in every node block.
void ExpectTreesByteIdentical(const Built& a, const Built& b) {
  ASSERT_EQ(a.tree->empty(), b.tree->empty());
  if (a.tree->empty()) return;
  ASSERT_EQ(a.tree->root(), b.tree->root());
  ASSERT_EQ(a.tree->height(), b.tree->height());
  ASSERT_EQ(a.tree->size(), b.tree->size());
  ASSERT_EQ(a.tree->block_size(), b.tree->block_size());
  const size_t bs = a.tree->block_size();
  std::vector<std::byte> buf_a(bs), buf_b(bs);
  std::vector<PageId> stack{a.tree->root()};
  size_t pages = 0;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    AbortIfError(a.device->Read(page, buf_a.data()));
    AbortIfError(b.device->Read(page, buf_b.data()));
    ASSERT_EQ(std::memcmp(buf_a.data(), buf_b.data(), bs), 0)
        << "node page " << page << " differs";
    ConstNodeView<2> node(buf_a.data(), bs);
    ++pages;
    if (!node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
    }
  }
  // The whole allocation history matched, not just the tree pages.
  EXPECT_EQ(a.device->num_allocated(), b.device->num_allocated());
  EXPECT_EQ(a.device->peak_allocated(), b.device->peak_allocated());
  EXPECT_EQ(a.build_io.reads, b.build_io.reads);
  EXPECT_EQ(a.build_io.writes, b.build_io.writes);
  SUCCEED() << pages << " pages compared";
}

TEST(BulkLoaderDeterminismTest, PrTreeInMemoryPathThreads8MatchesSerial) {
  auto data = workload::MakeTigerLike(30000, workload::TigerRegion::kWestern,
                                      7);
  BuildOptions serial;
  serial.memory_bytes = 64u << 20;  // whole input in memory
  BuildOptions parallel = serial;
  parallel.threads = 8;
  Built a = Build(LoaderKind::kPrTree, data, serial);
  Built b = Build(LoaderKind::kPrTree, data, parallel);
  ASSERT_TRUE(ValidateTree(*b.tree).ok());
  ExpectTreesByteIdentical(a, b);
}

TEST(BulkLoaderDeterminismTest, PrTreeGridPathThreads8MatchesSerial) {
  auto data = workload::MakeTigerLike(12000, workload::TigerRegion::kEastern,
                                      11);
  BuildOptions serial;
  serial.memory_bytes = 256u << 10;  // tiny budget: deep grid recursion
  serial.force_grid = true;
  BuildOptions parallel = serial;
  parallel.threads = 8;
  Built a = Build(LoaderKind::kPrTree, data, serial, /*block_size=*/512);
  Built b = Build(LoaderKind::kPrTree, data, parallel, /*block_size=*/512);
  ASSERT_TRUE(ValidateTree(*b.tree).ok());
  ExpectTreesByteIdentical(a, b);
}

TEST(BulkLoaderDeterminismTest, DuplicateCoordinatesStillTieBrokenById) {
  // Every rectangle identical: only the id tie-breaks in CoordLess /
  // ExtremeLess / the sort comparators.  Any instability in the parallel
  // sorts or selections would reorder leaves and change bytes.
  std::vector<Record2> data(5000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i].rect.lo = {0.25, 0.25};
    data[i].rect.hi = {0.75, 0.75};
    data[i].id = static_cast<DataId>(i * 7 % data.size());  // shuffled ids
  }
  BuildOptions serial;
  serial.memory_bytes = 128u << 10;
  serial.force_grid = true;
  BuildOptions parallel = serial;
  parallel.threads = 8;
  Built a = Build(LoaderKind::kPrTree, data, serial, /*block_size=*/512);
  Built b = Build(LoaderKind::kPrTree, data, parallel, /*block_size=*/512);
  ExpectTreesByteIdentical(a, b);
}

class AllLoadersParam : public ::testing::TestWithParam<LoaderKind> {};

TEST_P(AllLoadersParam, FactoryBuildsValidTreeAndParallelMatchesSerial) {
  auto data = workload::MakeSize(8000, 0.02, 3);
  BuildOptions serial;
  serial.memory_bytes = 512u << 10;
  BuildOptions parallel = serial;
  parallel.threads = 4;
  Built a = Build(GetParam(), data, serial);
  Built b = Build(GetParam(), data, parallel);
  ASSERT_TRUE(ValidateTree(*a.tree).ok());
  ASSERT_EQ(a.tree->size(), data.size());
  ExpectTreesByteIdentical(a, b);
  // Query answers match brute force through the unified API's product.
  Rng rng(99);
  for (int q = 0; q < 10; ++q) {
    Rect2 w = testing_util::RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(a.tree->QueryToVector(w)), BruteForceQuery(data, w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllLoadersParam,
    ::testing::Values(LoaderKind::kPrTree, LoaderKind::kHilbert,
                      LoaderKind::kHilbert4D, LoaderKind::kTgs,
                      LoaderKind::kStr),
    [](const ::testing::TestParamInfo<LoaderKind>& info) {
      return std::string(LoaderKindName(info.param));
    });

TEST(BulkLoaderDeterminismTest, PartialTrailingNodeAloneInPackTask) {
  // Regression: with block 1024 (fan-out 28) and 2773 records, the packed
  // level-1 has exactly 4 nodes — one per task at threads=4 — and the last
  // node is partial.  Before NodeView::Format zeroed the entry area, that
  // node's unused slots held the serial NodeWriter's stale bytes but the
  // parallel task's fresh zeros, breaking byte-identity.
  auto data = workload::MakeSize(2773, 0.01, 13);
  BuildOptions serial;
  serial.memory_bytes = 4u << 20;
  BuildOptions parallel = serial;
  parallel.threads = 4;
  for (LoaderKind kind : {LoaderKind::kHilbert, LoaderKind::kStr}) {
    Built a = Build(kind, data, serial);
    Built b = Build(kind, data, parallel);
    ExpectTreesByteIdentical(a, b);
  }
}

TEST(BulkLoaderTest, SharedExternalPoolAcrossBuilds) {
  ThreadPool pool(4);
  auto data = workload::MakeCluster(60, 100, 5);
  BuildOptions opts;
  opts.memory_bytes = 1u << 20;
  opts.pool = &pool;
  Built with_pool = Build(LoaderKind::kPrTree, data, opts);
  BuildOptions serial;
  serial.memory_bytes = 1u << 20;
  Built without = Build(LoaderKind::kPrTree, data, serial);
  ExpectTreesByteIdentical(without, with_pool);
  // The pool survives for unrelated work afterwards.
  ThreadPool::TaskGroup group;
  int flag = 0;
  pool.Submit(&group, [&flag] { flag = 1; });
  pool.WaitFor(&group);
  EXPECT_EQ(flag, 1);
}

TEST(BulkLoaderTest, EightThreadGridBuildSmoke) {
  // TSan target: exercises concurrent base-case tasks, nested pseudo-PR
  // forks, parallel run sorts and parallel level packing in one build.
  auto data = workload::MakeSkewed(20000, 5, 21);
  BuildOptions opts;
  opts.memory_bytes = 256u << 10;
  opts.threads = 8;
  opts.force_grid = true;
  Built b = Build(LoaderKind::kPrTree, data, opts, /*block_size=*/512);
  ASSERT_TRUE(ValidateTree(*b.tree).ok());
  EXPECT_EQ(b.tree->size(), data.size());
  auto dumped = DumpRecords(*b.tree);
  CanonicalSort(&dumped);
  auto expect = data;
  CanonicalSort(&expect);
  ASSERT_EQ(dumped.size(), expect.size());
  for (size_t i = 0; i < dumped.size(); ++i) {
    EXPECT_EQ(dumped[i].id, expect[i].id);
  }
}

TEST(BulkLoaderTest, HilbertCentreCurveIsTwoDOnly) {
  MemoryBlockDevice dev(1024);
  RTree<3> tree(&dev);
  Stream<Record<3>> input(&dev);
  auto loader = MakeBulkLoader<3>(LoaderKind::kHilbert, BuildOptions{});
  EXPECT_FALSE(loader->Build(&dev, &input, &tree).ok());
}

TEST(BulkLoaderTest, KindNamesRoundTrip) {
  for (LoaderKind kind : AllLoaderKinds()) {
    LoaderKind parsed;
    ASSERT_TRUE(ParseLoaderKind(LoaderKindName(kind), &parsed))
        << LoaderKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  LoaderKind k;
  EXPECT_TRUE(ParseLoaderKind("h4", &k));
  EXPECT_EQ(k, LoaderKind::kHilbert4D);
  EXPECT_FALSE(ParseLoaderKind("nope", &k));
}

}  // namespace
}  // namespace prtree
