#include "workload/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "io/block_device.h"
#include "io/external_sort.h"
#include "io/stream.h"
#include "io/work_env.h"
#include "workload/queries.h"

namespace prtree {
namespace {

std::vector<Record2> Drain(workload::RecordGenerator* gen) {
  std::vector<Record2> out;
  Record2 rec;
  while (gen->Next(&rec)) out.push_back(rec);
  return out;
}

TEST(SizeDatasetTest, InsideUnitSquareWithBoundedSides) {
  for (double max_side : {0.002, 0.05, 0.2}) {
    auto data = workload::MakeSize(5000, max_side, 42);
    ASSERT_EQ(data.size(), 5000u);
    for (const auto& rec : data) {
      EXPECT_GE(rec.rect.lo[0], 0.0);
      EXPECT_GE(rec.rect.lo[1], 0.0);
      EXPECT_LE(rec.rect.hi[0], 1.0);
      EXPECT_LE(rec.rect.hi[1], 1.0);
      EXPECT_LE(rec.rect.Extent(0), max_side);
      EXPECT_LE(rec.rect.Extent(1), max_side);
    }
  }
}

TEST(SizeDatasetTest, DeterministicPerSeed) {
  auto a = workload::MakeSize(100, 0.01, 7);
  auto b = workload::MakeSize(100, 0.01, 7);
  auto c = workload::MakeSize(100, 0.01, 8);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(AspectDatasetTest, FixedAreaAndAspect) {
  for (double aspect : {10.0, 1e3, 1e5}) {
    auto data = workload::MakeAspect(2000, aspect, 1);
    ASSERT_EQ(data.size(), 2000u);
    size_t horizontal = 0;
    for (const auto& rec : data) {
      double w = rec.rect.Extent(0);
      double h = rec.rect.Extent(1);
      EXPECT_NEAR(w * h, 1e-6, 1e-9);
      double a = std::max(w, h) / std::min(w, h);
      EXPECT_NEAR(a, aspect, aspect * 1e-6);
      EXPECT_GE(rec.rect.lo[0], 0.0);
      EXPECT_LE(rec.rect.hi[0], 1.0);
      EXPECT_GE(rec.rect.lo[1], 0.0);
      EXPECT_LE(rec.rect.hi[1], 1.0);
      if (w > h) ++horizontal;
    }
    // Long side horizontal or vertical with equal probability.
    EXPECT_GT(horizontal, data.size() / 3);
    EXPECT_LT(horizontal, data.size() * 2 / 3);
  }
}

TEST(SkewedDatasetTest, PointsSqueezedTowardZero) {
  auto uniform = workload::MakeSkewed(20000, 1, 3);
  auto skewed = workload::MakeSkewed(20000, 5, 3);
  auto mean_y = [](const std::vector<Record2>& v) {
    double s = 0;
    for (const auto& r : v) s += r.rect.lo[1];
    return s / v.size();
  };
  EXPECT_NEAR(mean_y(uniform), 0.5, 0.02);   // E[y] = 1/2
  EXPECT_NEAR(mean_y(skewed), 1.0 / 6, 0.02);  // E[y^5] = 1/6
  for (const auto& r : skewed) {
    EXPECT_EQ(r.rect.lo[0], r.rect.hi[0]);  // points
    EXPECT_EQ(r.rect.lo[1], r.rect.hi[1]);
  }
}

TEST(ClusterDatasetTest, TightClustersOnHorizontalLine) {
  auto data = workload::MakeCluster(100, 50, 5);
  ASSERT_EQ(data.size(), 5000u);
  for (size_t ci = 0; ci < 100; ++ci) {
    double cx = (ci + 0.5) / 100;
    for (size_t p = 0; p < 50; ++p) {
      const auto& rec = data[ci * 50 + p];
      EXPECT_NEAR(rec.rect.lo[0], cx, 1e-5);
      EXPECT_NEAR(rec.rect.lo[1], 0.5, 1e-5);
    }
  }
}

TEST(WorstCaseGridTest, MatchesSection24Construction) {
  const size_t columns = 16, rows = 4;
  auto data = workload::MakeWorstCaseGrid(columns, rows);
  ASSERT_EQ(data.size(), columns * rows);
  const double n = static_cast<double>(columns * rows);
  std::set<std::pair<double, double>> points;
  for (const auto& rec : data) {
    points.insert({rec.rect.lo[0], rec.rect.lo[1]});
  }
  EXPECT_EQ(points.size(), data.size());  // all distinct
  // Spot-check the formula: p_{i,j} = (i + 1/2, j/B + h(i)/N).
  for (size_t i : {size_t{0}, size_t{5}, size_t{15}}) {
    for (size_t j : {size_t{0}, size_t{3}}) {
      const auto& rec = data[i * rows + j];
      EXPECT_DOUBLE_EQ(rec.rect.lo[0], i + 0.5);
      EXPECT_DOUBLE_EQ(rec.rect.lo[1],
                       static_cast<double>(j) / rows +
                           static_cast<double>(workload::BitReverse(i, 4)) /
                               n);
    }
  }
  // The §2.4 gap property: no point's y lies in (j/rows - 1/N, j/rows).
  for (const auto& rec : data) {
    double y = rec.rect.lo[1];
    for (int j = 1; j <= static_cast<int>(rows); ++j) {
      double upper = static_cast<double>(j) / rows;
      EXPECT_FALSE(y > upper - 1.0 / n && y < upper);
    }
  }
}

TEST(TigerLikeTest, SmallThinClusteredSegments) {
  auto data = workload::MakeTigerLike(20000, workload::TigerRegion::kEastern,
                                      1997);
  ASSERT_EQ(data.size(), 20000u);
  double total_diag = 0;
  for (const auto& rec : data) {
    EXPECT_GE(rec.rect.lo[0], 0.0);
    EXPECT_LE(rec.rect.hi[0], 1.0);
    EXPECT_GE(rec.rect.lo[1], 0.0);
    EXPECT_LE(rec.rect.hi[1], 1.0);
    total_diag += std::hypot(rec.rect.Extent(0), rec.rect.Extent(1));
  }
  // "Relatively small rectangles": mean segment length well under 1% of
  // the extent.
  EXPECT_LT(total_diag / data.size(), 0.005);

  // "Somewhat clustered": the densest 4% of a 25x25 occupancy histogram
  // holds far more than 4% of the segments.
  std::vector<int> cells(25 * 25, 0);
  for (const auto& rec : data) {
    int cx = std::min(24, static_cast<int>(rec.rect.Center(0) * 25));
    int cy = std::min(24, static_cast<int>(rec.rect.Center(1) * 25));
    ++cells[cy * 25 + cx];
  }
  std::sort(cells.begin(), cells.end(), std::greater<int>());
  int top = 0;
  for (int i = 0; i < 25; ++i) top += cells[i];
  EXPECT_GT(top, static_cast<int>(data.size()) / 5);
}

TEST(TigerLikeTest, SizeGradedPrefixesShareARegionStream) {
  auto small = workload::MakeTigerLike(1000, workload::TigerRegion::kWestern,
                                       1997);
  auto large = workload::MakeTigerLike(5000, workload::TigerRegion::kWestern,
                                       1997);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_TRUE(small[i] == large[i]) << i;
  }
}

TEST(SquareQueryTest, AreaAndContainment) {
  Rect2 extent = MakeRect(2, 3, 10, 7);
  auto queries = workload::MakeSquareQueries(extent, 0.01, 50, 9);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_TRUE(extent.Contains(q));
    EXPECT_NEAR(q.Area(), 0.01 * extent.Area(), 1e-9);
    // Square in *fractional* side terms: side = sqrt(f) * extent side.
    EXPECT_NEAR(q.Extent(0) / extent.Extent(0),
                q.Extent(1) / extent.Extent(1), 1e-12);
  }
}

TEST(SkewedQueryTest, CornersFollowDataTransform) {
  auto queries = workload::MakeSkewedQueries(0.01, 3, 20, 13);
  for (const auto& q : queries) {
    EXPECT_GE(q.lo[1], 0.0);
    EXPECT_LE(q.hi[1], 1.0);
    EXPECT_LT(q.lo[1], q.hi[1]);
    // y-extent shrinks toward y=0 (derivative of y^3 vanishes at 0).
    EXPECT_NEAR(q.Extent(0), 0.1, 1e-12);
  }
}

TEST(StabQueryTest, SpansExtentHorizontally) {
  Rect2 extent = MakeRect(0, 0, 1, 1);
  auto queries = workload::MakeHorizontalStabQueries(extent, 1e-7, 0.5, 30,
                                                     15);
  for (const auto& q : queries) {
    EXPECT_EQ(q.lo[0], 0.0);
    EXPECT_EQ(q.hi[0], 1.0);
    EXPECT_NEAR(q.Extent(1), 1e-7, 1e-15);
    EXPECT_GT(q.lo[1], 0.2);
    EXPECT_LT(q.hi[1], 0.8);
  }
}

// The out-of-core sweep feeds 10-100M records through the generators
// without materializing them; these tests pin the contract the sweep
// depends on (datasets.h RecordGenerator doc comment).

TEST(RecordGeneratorTest, ByteIdenticalToMaterializedPath) {
  const size_t n = 100'000;
  {
    auto gen = workload::NewSizeGenerator(n, 0.001, 9);
    EXPECT_TRUE(Drain(gen.get()) == workload::MakeSize(n, 0.001, 9));
  }
  {
    auto gen = workload::NewAspectGenerator(n, 100.0, 9);
    EXPECT_TRUE(Drain(gen.get()) == workload::MakeAspect(n, 100.0, 9));
  }
  {
    auto gen = workload::NewSkewedGenerator(n, 3, 9);
    EXPECT_TRUE(Drain(gen.get()) == workload::MakeSkewed(n, 3, 9));
  }
  {
    auto gen = workload::NewClusterGenerator(200, n / 200, 9);
    EXPECT_TRUE(Drain(gen.get()) == workload::MakeCluster(200, n / 200, 9));
  }
  {
    auto gen =
        workload::NewTigerLikeGenerator(n, workload::TigerRegion::kEastern, 9);
    EXPECT_TRUE(Drain(gen.get()) ==
                workload::MakeTigerLike(n, workload::TigerRegion::kEastern,
                                        9));
  }
}

TEST(RecordGeneratorTest, SameSeedSameStreamAndExhaustionIsSticky) {
  auto a = workload::NewSizeGenerator(5000, 0.01, 7);
  auto b = workload::NewSizeGenerator(5000, 0.01, 7);
  auto c = workload::NewSizeGenerator(5000, 0.01, 8);
  auto va = Drain(a.get());
  EXPECT_TRUE(va == Drain(b.get()));
  EXPECT_FALSE(va == Drain(c.get()));
  Record2 rec;
  EXPECT_FALSE(a->Next(&rec));  // stays exhausted
  EXPECT_FALSE(a->Next(&rec));
}

TEST(RecordGeneratorTest, SmallerSizeIsAPrefixOfLarger) {
  // Size-graded datasets (Figure 10/14, the scale sweep) must be prefixes
  // of one stream: the n parameter only gates termination.
  auto small = Drain(workload::NewSizeGenerator(3000, 0.001, 11).get());
  auto large = Drain(workload::NewSizeGenerator(6000, 0.001, 11).get());
  ASSERT_EQ(small.size(), 3000u);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), large.begin()));

  auto tiger_small = Drain(workload::NewTigerLikeGenerator(
                               3000, workload::TigerRegion::kWestern, 11)
                               .get());
  auto tiger_large = Drain(workload::NewTigerLikeGenerator(
                               6000, workload::TigerRegion::kWestern, 11)
                               .get());
  EXPECT_TRUE(std::equal(tiger_small.begin(), tiger_small.end(),
                         tiger_large.begin()));
}

TEST(RecordGeneratorTest, StreamsThroughExternalSort) {
  // The scale sweep's exact pipeline at miniature size: generator ->
  // device-resident Stream -> ExternalSort, no in-RAM dataset.
  const size_t n = 20'000;
  MemoryBlockDevice dev(kDefaultBlockSize);
  WorkEnv env{&dev, 64 * 1024};
  Stream<Record2> input(&dev);
  {
    auto gen = workload::NewSizeGenerator(n, 0.001, 13);
    Record2 rec;
    while (gen->Next(&rec)) input.Push(rec);
    input.Flush();
  }
  ASSERT_EQ(input.size(), n);
  auto less = [](const Record2& a, const Record2& b) {
    return a.rect.lo[0] < b.rect.lo[0];
  };
  Stream<Record2> sorted = ExternalSort(env, &input, less);
  ASSERT_EQ(sorted.size(), n);

  auto expected = workload::MakeSize(n, 0.001, 13);
  std::sort(expected.begin(), expected.end(),
            [&](const Record2& a, const Record2& b) {
              if (a.rect.lo[0] != b.rect.lo[0]) return less(a, b);
              return a.id < b.id;  // tie-break for a deterministic oracle
            });
  Stream<Record2>::Reader reader(&sorted);
  size_t i = 0;
  double prev = -1;
  while (!reader.Done()) {
    Record2 rec = reader.Next();
    EXPECT_GE(rec.rect.lo[0], prev);
    prev = rec.rect.lo[0];
    EXPECT_EQ(rec.rect.lo[0], expected[i].rect.lo[0]);
    ++i;
  }
  EXPECT_EQ(i, n);
}

}  // namespace
}  // namespace prtree
