// Crash-recovery contract of the update journal (io/journal.h,
// rtree/journaled_tree.h, docs/DURABILITY.md):
//
//   * Deterministic crash-point matrix: a dry run measures W, the exact
//     number of block-write attempts an op sequence makes; then for a
//     stride sample of every k <= W a forked child is "killed" after
//     exactly k writes (the device's crash switch silently drops the
//     rest) and the reopened index must validate clean and hold exactly
//     a committed PREFIX of the op sequence — with and without tearing
//     the final surviving write.
//   * Torn journal tail: a commit frame that lands partially is
//     truncated on recovery, everything before it survives.
//   * Torn data page: a shadow page torn under an uncommitted op never
//     becomes visible (copy-on-write keeps the committed root intact).
//   * Randomized property: 200+ seeded trials of random op streams X
//     random crash points, file and uring backends; recovery is always a
//     committed prefix and num_allocated is leak-free afterwards (the
//     failing seed is echoed).
//   * Demand-I/O identity: journaling charges only the meta counters —
//     the same op and query sequences produce byte-identical demand
//     stats and QueryStats with the journal on or off.
//   * persist.h integration: AttachTree refuses a device with unapplied
//     journal frames and accepts it again after recovery's checkpoint.

#include "rtree/journaled_tree.h"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "rtree/persist.h"
#include "rtree/update.h"
#include "rtree/validate.h"

namespace prtree {
namespace {

struct Op {
  bool insert = true;
  Record2 rec;
};

Rect2 RectFor(uint32_t id) {
  std::mt19937 rng(id * 2654435761u + 7u);
  std::uniform_real_distribution<double> pos(0.0, 100.0);
  std::uniform_real_distribution<double> ext(0.5, 3.0);
  Rect2 r;
  r.lo = {pos(rng), pos(rng)};
  r.hi = {r.lo[0] + ext(rng), r.lo[1] + ext(rng)};
  return r;
}

// Deterministic op stream: mostly inserts of ids 1,2,3,…; now and then a
// delete of the oldest id still live.
std::vector<Op> MakeOps(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  uint32_t next = 1, oldest = 1;
  for (size_t i = 0; i < n; ++i) {
    Op op;
    if (next - oldest > 4 && rng() % 4 == 0) {
      op.insert = false;
      op.rec = Record2{RectFor(oldest), oldest};
      ++oldest;
    } else {
      op.rec = Record2{RectFor(next), next};
      ++next;
    }
    ops.push_back(op);
  }
  return ops;
}

// The record set after applying the first `count` ops.
std::map<uint32_t, Rect2> ExpectedAfter(const std::vector<Op>& ops,
                                        size_t count) {
  std::map<uint32_t, Rect2> live;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].insert) {
      live[ops[i].rec.id] = ops[i].rec.rect;
    } else {
      live.erase(ops[i].rec.id);
    }
  }
  return live;
}

JournaledTree<2>::Options MakeOpts(const std::string& backend) {
  JournaledTree<2>::Options o;
  o.backend = backend;
  o.device.block_size = 1024;
  o.journal.region_pages = 16;
  return o;
}

void ApplyOps(JournaledTree<2>* t, const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    if (op.insert) {
      ASSERT_TRUE(t->Insert(op.rec).ok());
    } else {
      bool deleted = false;
      ASSERT_TRUE(t->Delete(op.rec, &deleted).ok());
      ASSERT_TRUE(deleted);
    }
  }
}

// Forks a child that creates the index, arms the crash switch (drop every
// write after the k-th, optionally tearing the k-th) and applies the op
// stream.  Post-crash the child's in-memory state diverges from the dead
// disk, so it may abort — any termination is fine; the disk image is what
// is under test.
void RunCrashChild(const std::string& path, const std::string& backend,
                   const std::vector<Op>& ops, uint64_t k,
                   size_t tear_prefix) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    std::remove(path.c_str());
    std::unique_ptr<JournaledTree<2>> t;
    if (!JournaledTree<2>::Create(path, MakeOpts(backend), &t).ok()) {
      _exit(3);
    }
    t->device()->InjectCrashAfterWrites(k, tear_prefix);
    // Post-crash the child may abort on its own diverged reads — that is
    // the simulated kill, not a failure; keep its noise out of the log.
    (void)!freopen("/dev/null", "w", stderr);
    for (const Op& op : ops) {
      if (op.insert) {
        if (!t->Insert(op.rec).ok()) _exit(0);
      } else {
        if (!t->Delete(op.rec).ok()) _exit(0);
      }
    }
    _exit(0);  // no destructors: the crash also killed the close path
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  if (WIFEXITED(wstatus)) {
    ASSERT_NE(WEXITSTATUS(wstatus), 3) << "child Create failed";
  }
}

size_t CountReachable(FileBlockDevice* dev, PageId root) {
  if (root == kInvalidPageId) return 0;
  std::vector<uint8_t> mark(dev->num_pages(), 0);
  std::vector<PageId> stack{root};
  std::vector<std::byte> buf(dev->block_size());
  size_t n = 0;
  while (!stack.empty()) {
    PageId p = stack.back();
    stack.pop_back();
    if (p >= mark.size() || mark[p] != 0) continue;
    mark[p] = 1;
    ++n;
    if (!dev->ReadMeta(p, buf.data()).ok()) continue;
    ConstNodeView<2> node(buf.data(), dev->block_size());
    if (!node.IsFormatted() || node.is_leaf()) continue;
    for (int i = 0; i < node.count(); ++i) stack.push_back(node.GetId(i));
  }
  return n;
}

// Reopens `path` and asserts the whole recovery contract: committed
// prefix, matching record payloads, ValidateTree (done inside Open),
// leak-free allocation.  `context` is echoed on failure (seeds, k).
void CheckRecovered(const std::string& path, const std::string& backend,
                    const std::vector<Op>& ops, const std::string& context) {
  std::unique_ptr<JournaledTree<2>> t;
  JournaledTree<2>::RecoveryReport rep;
  Status st = JournaledTree<2>::Open(path, MakeOpts(backend), &t, &rep);
  ASSERT_TRUE(st.ok()) << context << ": Open: " << st.message();

  // The committed ops must be EXACTLY a prefix of the applied stream.
  ASSERT_LE(rep.ops.size(), ops.size()) << context;
  for (size_t i = 0; i < rep.ops.size(); ++i) {
    EXPECT_EQ(rep.ops[i].type == JournalFrameType::kInsert, ops[i].insert)
        << context << ": op " << i;
    EXPECT_TRUE(rep.ops[i].record == ops[i].rec) << context << ": op " << i;
  }

  // And the tree must hold exactly that prefix's record set.
  auto expected = ExpectedAfter(ops, rep.ops.size());
  Rect2 all;
  all.lo = {-10.0, -10.0};
  all.hi = {200.0, 200.0};
  std::map<uint32_t, Rect2> got;
  t->tree().Query(all, [&](const Record2& rec) { got[rec.id] = rec.rect; });
  ASSERT_EQ(got.size(), expected.size()) << context;
  EXPECT_EQ(t->tree().size(), expected.size()) << context;
  for (const auto& [id, rect] : expected) {
    auto it = got.find(id);
    ASSERT_NE(it, got.end()) << context << ": id " << id << " missing";
    EXPECT_TRUE(it->second == rect) << context << ": id " << id;
  }

  // Leak-free: after the recovery sweep + fresh checkpoint, allocation is
  // exactly live tree pages plus the journal region.
  const size_t reachable = CountReachable(
      t->device(), t->tree().empty() ? kInvalidPageId : t->tree().root());
  EXPECT_EQ(t->device()->num_allocated(),
            reachable + t->journal().journal_pages())
      << context << ": leaked pages";
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/prtree_crash_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(static_cast<long>(getpid())) + ".idx";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Measures W: the block-write attempts the full op stream makes after
  // Create (deterministic — the matrix crashes at indices below it).
  uint64_t DryRunWrites(const std::string& backend,
                        const std::vector<Op>& ops) {
    std::remove(path_.c_str());
    std::unique_ptr<JournaledTree<2>> t;
    AbortIfError(JournaledTree<2>::Create(path_, MakeOpts(backend), &t));
    const uint64_t before = t->device()->write_attempts();
    for (const Op& op : ops) {
      if (op.insert) {
        AbortIfError(t->Insert(op.rec));
      } else {
        AbortIfError(t->Delete(op.rec));
      }
    }
    const uint64_t w = t->device()->write_attempts() - before;
    t.reset();
    std::remove(path_.c_str());
    return w;
  }

  void RunMatrix(const std::string& backend) {
    const std::vector<Op> ops = MakeOps(/*seed=*/1234, /*n=*/48);
    const uint64_t w = DryRunWrites(backend, ops);
    ASSERT_GT(w, 0u);
    // Stride-sample ~40 crash points (plus k=0 and k=W); every 5th point
    // also tears the final surviving write mid-block.
    const uint64_t stride = std::max<uint64_t>(1, w / 40);
    size_t point = 0;
    for (uint64_t k = 0; k <= w; k += (k == 0 ? 1 : stride), ++point) {
      const size_t tear =
          point % 5 == 4 ? size_t{137} : BlockDevice::kNoTear;
      RunCrashChild(path_, backend, ops, k, tear);
      CheckRecovered(path_, backend, ops,
                     backend + " crash at k=" + std::to_string(k) +
                         (tear == BlockDevice::kNoTear ? "" : " (torn)"));
    }
  }

  std::string path_;
};

TEST_F(CrashRecoveryTest, DeterministicCrashMatrixFileBackend) {
  RunMatrix("file");
}

TEST_F(CrashRecoveryTest, DeterministicCrashMatrixUringBackend) {
  RunMatrix("uring");
}

TEST_F(CrashRecoveryTest, RandomizedRecoveryProperty) {
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = 0xC0FFEEu + static_cast<uint64_t>(trial);
    std::mt19937_64 rng(seed);
    const size_t n = 20 + rng() % 60;
    const std::vector<Op> ops = MakeOps(seed, n);
    const uint64_t k = rng() % 400;  // may exceed W: clean completion
    const size_t tear =
        rng() % 3 == 0 ? 1 + rng() % 1000 : BlockDevice::kNoTear;
    const std::string backend = trial % 4 == 3 ? "uring" : "file";
    RunCrashChild(path_, backend, ops, k, tear);
    CheckRecovered(path_, backend, ops,
                   "seed=" + std::to_string(seed) + " backend=" + backend +
                       " k=" + std::to_string(k));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "replay with seed=" << seed;
    }
  }
}

TEST_F(CrashRecoveryTest, TornJournalTailIsTruncated) {
  auto opts = MakeOpts("file");
  opts.checkpoint_on_close = false;
  const std::vector<Op> ops = MakeOps(/*seed=*/99, /*n=*/7);
  {
    std::unique_ptr<JournaledTree<2>> t;
    ASSERT_TRUE(JournaledTree<2>::Create(path_, opts, &t).ok());
    std::vector<Op> first(ops.begin(), ops.begin() + 6);
    ApplyOps(t.get(), first);
    ASSERT_EQ(t->journal().committed_ops(), 6u);

    // Tear the 7th op's commit flush so its record frame lands whole but
    // the commit frame does not: a torn journal tail.
    const size_t tail = t->journal().tail_bytes();
    t->device()->InjectTornWrite(t->journal().tail_page(),
                                 tail + /*record frame*/ 64 + 20);
    ApplyOps(t.get(), {ops[6]});
  }  // no close checkpoint: the dirty journal survives as-is

  std::unique_ptr<JournaledTree<2>> t;
  JournaledTree<2>::RecoveryReport rep;
  ASSERT_TRUE(JournaledTree<2>::Open(path_, MakeOpts("file"), &t, &rep).ok());
  EXPECT_EQ(rep.committed_ops, 6u);
  EXPECT_GE(rep.truncated_frames, 1u);  // the orphaned record frame
  auto expected = ExpectedAfter(ops, 6);
  EXPECT_EQ(t->tree().size(), expected.size());
}

TEST_F(CrashRecoveryTest, TornDataPageUnderUncommittedOpStaysInvisible) {
  auto opts = MakeOpts("file");
  opts.checkpoint_on_close = false;
  const std::vector<Op> ops = MakeOps(/*seed=*/7, /*n=*/6);
  {
    std::unique_ptr<JournaledTree<2>> t;
    ASSERT_TRUE(JournaledTree<2>::Create(path_, opts, &t).ok());
    std::vector<Op> first(ops.begin(), ops.begin() + 5);
    ApplyOps(t.get(), first);

    // The 6th op's first block write — a copy-on-write shadow page —
    // lands torn and everything after it (its commit included) is lost.
    t->device()->InjectCrashAfterWrites(1, /*tear_prefix_bytes=*/100);
    ApplyOps(t.get(), {ops[5]});
  }

  std::unique_ptr<JournaledTree<2>> t;
  JournaledTree<2>::RecoveryReport rep;
  ASSERT_TRUE(JournaledTree<2>::Open(path_, MakeOpts("file"), &t, &rep).ok());
  EXPECT_EQ(rep.committed_ops, 5u);
  auto expected = ExpectedAfter(ops, 5);
  EXPECT_EQ(t->tree().size(), expected.size());
}

TEST_F(CrashRecoveryTest, CleanCloseReopensWithoutRecovery) {
  const std::vector<Op> ops = MakeOps(/*seed=*/5, /*n=*/30);
  {
    std::unique_ptr<JournaledTree<2>> t;
    ASSERT_TRUE(JournaledTree<2>::Create(path_, MakeOpts("file"), &t).ok());
    ApplyOps(t.get(), ops);
  }  // destructor checkpoints
  std::unique_ptr<JournaledTree<2>> t;
  JournaledTree<2>::RecoveryReport rep;
  ASSERT_TRUE(JournaledTree<2>::Open(path_, MakeOpts("file"), &t, &rep).ok());
  EXPECT_FALSE(rep.recovered);
  EXPECT_EQ(rep.committed_ops, 0u);
  EXPECT_EQ(t->tree().size(), ExpectedAfter(ops, ops.size()).size());
}

TEST_F(CrashRecoveryTest, AttachTreeRefusesDirtyJournalAcceptsCleanOne) {
  auto opts = MakeOpts("file");
  opts.checkpoint_on_close = false;
  const std::vector<Op> ops = MakeOps(/*seed=*/11, /*n=*/5);
  {
    std::unique_ptr<JournaledTree<2>> t;
    ASSERT_TRUE(JournaledTree<2>::Create(path_, opts, &t).ok());
    ApplyOps(t.get(), ops);
  }  // journal left dirty

  {
    FileDeviceOptions dopts;
    dopts.must_exist = true;
    std::unique_ptr<FileBlockDevice> dev;
    ASSERT_TRUE(FileBlockDevice::Open(path_, dopts, &dev).ok());
    RTree<2> tree(dev.get());
    Status st = AttachTree(dev.get(), &tree);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }

  // Recovery + clean close checkpoint the journal; AttachTree is happy
  // again (the anchor epoch matches and nothing is pending).
  {
    std::unique_ptr<JournaledTree<2>> t;
    ASSERT_TRUE(JournaledTree<2>::Open(path_, MakeOpts("file"), &t).ok());
  }
  FileDeviceOptions dopts;
  dopts.must_exist = true;
  std::unique_ptr<FileBlockDevice> dev;
  ASSERT_TRUE(FileBlockDevice::Open(path_, dopts, &dev).ok());
  RTree<2> tree(dev.get());
  ASSERT_TRUE(AttachTree(dev.get(), &tree).ok());
  EXPECT_EQ(tree.size(), ExpectedAfter(ops, ops.size()).size());
  EXPECT_TRUE(ValidateTree(tree).ok());
}

TEST_F(CrashRecoveryTest, DemandCountersIdenticalWithJournalOnOrOff) {
  const std::vector<Op> ops = MakeOps(/*seed=*/31, /*n=*/80);
  const std::string path_off = path_ + ".off";
  std::remove(path_off.c_str());

  // Journal OFF: a plain in-place updater on a bare file device.
  FileDeviceOptions dopts;
  dopts.block_size = 1024;
  dopts.truncate = true;
  std::unique_ptr<FileBlockDevice> dev_off;
  ASSERT_TRUE(FileBlockDevice::Open(path_off, dopts, &dev_off).ok());
  RTree<2> tree_off(dev_off.get());
  RTreeUpdater<2> up_off(&tree_off);
  dev_off->ResetStats();

  // Journal ON: the full journaled stack.
  std::unique_ptr<JournaledTree<2>> t;
  ASSERT_TRUE(JournaledTree<2>::Create(path_, MakeOpts("file"), &t).ok());
  t->device()->ResetStats();

  for (const Op& op : ops) {
    if (op.insert) {
      up_off.Insert(op.rec);
      ASSERT_TRUE(t->Insert(op.rec).ok());
    } else {
      ASSERT_TRUE(up_off.Delete(op.rec));
      bool deleted = false;
      ASSERT_TRUE(t->Delete(op.rec, &deleted).ok() && deleted);
    }
  }

  // Identical queries on both trees.
  QueryStats qs_off, qs_on;
  for (uint32_t q = 0; q < 5; ++q) {
    Rect2 w;
    w.lo = {q * 15.0, q * 10.0};
    w.hi = {q * 15.0 + 30.0, q * 10.0 + 40.0};
    size_t hits_off = 0, hits_on = 0;
    qs_off += tree_off.Query(w, [&](const Record2&) { ++hits_off; });
    qs_on += t->tree().Query(w, [&](const Record2&) { ++hits_on; });
    EXPECT_EQ(hits_off, hits_on) << "window " << q;
  }
  EXPECT_EQ(qs_off.nodes_visited, qs_on.nodes_visited);
  EXPECT_EQ(qs_off.internal_visited, qs_on.internal_visited);
  EXPECT_EQ(qs_off.leaves_visited, qs_on.leaves_visited);
  EXPECT_EQ(qs_off.results, qs_on.results);

  // The paper's demand metric is byte-identical; the journal's traffic
  // shows up only in the meta counters.
  const IoStats off = dev_off->stats();
  const IoStats on = t->device()->stats();
  EXPECT_EQ(off.reads, on.reads);
  EXPECT_EQ(off.writes, on.writes);
  EXPECT_EQ(off.Total(), on.Total());
  EXPECT_EQ(off.meta_writes, 0u);
  EXPECT_GT(on.meta_writes, 0u);

  std::remove(path_off.c_str());
}

}  // namespace
}  // namespace prtree
