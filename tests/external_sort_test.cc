#include "io/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace prtree {
namespace {

struct Rec {
  uint64_t key;
  uint64_t tag;
};

struct RecLess {
  bool operator()(const Rec& a, const Rec& b) const { return a.key < b.key; }
};

std::vector<Rec> RandomRecs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rec> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(Rec{rng.UniformInt(0, n / 2 + 1), i});
  }
  return v;
}

// Sweep input size x memory budget: output must always equal std::sort.
class ExternalSortTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ExternalSortTest, MatchesStdSort) {
  auto [n, mem_blocks] = GetParam();
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, mem_blocks * dev.block_size()};
  auto data = RandomRecs(n, 42 + n + mem_blocks);

  Stream<Rec> sorted = ExternalSortVector(env, data, RecLess{});
  ASSERT_EQ(sorted.size(), n);

  std::vector<Rec> expect = data;
  std::stable_sort(expect.begin(), expect.end(), RecLess{});
  std::vector<Rec> got;
  sorted.ReadAll(&got);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].key, expect[i].key) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortTest,
    ::testing::Combine(::testing::Values(0, 1, 31, 32, 33, 1000, 5000, 20000),
                       ::testing::Values(3, 4, 8, 64)));

TEST(ExternalSortDetailTest, SortedInputStaysSorted) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 4 * dev.block_size()};
  std::vector<Rec> data;
  for (size_t i = 0; i < 3000; ++i) data.push_back(Rec{i, i});
  Stream<Rec> sorted = ExternalSortVector(env, data, RecLess{});
  std::vector<Rec> got;
  sorted.ReadAll(&got);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].key, i);
}

TEST(ExternalSortDetailTest, AllEqualKeys) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 3 * dev.block_size()};
  std::vector<Rec> data(1000, Rec{7, 0});
  for (size_t i = 0; i < data.size(); ++i) data[i].tag = i;
  Stream<Rec> sorted = ExternalSortVector(env, data, RecLess{});
  EXPECT_EQ(sorted.size(), 1000u);
  std::vector<Rec> got;
  sorted.ReadAll(&got);
  for (const auto& r : got) EXPECT_EQ(r.key, 7u);
}

TEST(ExternalSortDetailTest, IoCountIsNearSortBound) {
  // The sorter must stay within a small constant of the
  // (N/B) * (1 + #merge passes) scan bound — this is what gives every bulk
  // loader its O((N/B) log_{M/B} (N/B)) term.
  MemoryBlockDevice dev(512);
  const size_t mem_blocks = 4;  // tiny M forces multiple merge passes
  WorkEnv env{&dev, mem_blocks * dev.block_size()};
  const size_t n = 50000;
  auto data = RandomRecs(n, 99);

  Stream<Rec> in(&dev);
  in.Append(data);
  in.Flush();
  dev.ResetStats();
  Stream<Rec> sorted = ExternalSort(env, &in, RecLess{});
  ASSERT_EQ(sorted.size(), n);

  double blocks = static_cast<double>(sorted.num_blocks());
  double run_blocks = 2.0 * 1.0;  // run formation holds >=2 blocks of records
  double runs = std::ceil(blocks / run_blocks);
  double fan_in = mem_blocks - 1;
  double passes = 1.0 + std::ceil(std::log(runs) / std::log(fan_in));
  uint64_t measured = dev.stats().Total();
  // Each pass reads and writes every block once (plus slack for partial
  // blocks and the final copy).
  EXPECT_LE(measured, static_cast<uint64_t>(2.5 * blocks * passes) + 32)
      << "blocks=" << blocks << " passes=" << passes;
}

TEST(ExternalSortDetailTest, LargeMemorySingleRun) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1 << 20};
  auto data = RandomRecs(10000, 5);
  Stream<Rec> in(&dev);
  in.Append(data);
  in.Flush();
  dev.ResetStats();
  Stream<Rec> sorted = ExternalSort(env, &in, RecLess{});
  ASSERT_EQ(sorted.size(), data.size());
  // Everything fits in one run: exactly one read + one write per block.
  EXPECT_LE(dev.stats().Total(), 2 * sorted.num_blocks() + 2);
}

TEST(ExternalSortDetailTest, NoBlockLeaks) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 4 * dev.block_size()};
  size_t baseline = dev.num_allocated();
  {
    auto data = RandomRecs(20000, 123);
    Stream<Rec> sorted = ExternalSortVector(env, data, RecLess{});
    EXPECT_EQ(sorted.size(), data.size());
    // Only the sorted output should remain live (input and runs freed).
    EXPECT_EQ(dev.num_allocated(), baseline + sorted.num_blocks());
  }
  EXPECT_EQ(dev.num_allocated(), baseline);
}

}  // namespace
}  // namespace prtree
