#include "core/corner_order.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::RandomRects;

TEST(CornerOrderTest, CoordLessOrdersByEachCornerCoordinate) {
  Record2 a{MakeRect(1, 5, 3, 8), 0};
  Record2 b{MakeRect(2, 4, 2.5, 9), 1};
  EXPECT_TRUE((CoordLess<2>{0}(a, b)));   // xmin 1 < 2
  EXPECT_FALSE((CoordLess<2>{1}(a, b)));  // ymin 5 > 4
  EXPECT_FALSE((CoordLess<2>{2}(a, b)));  // xmax 3 > 2.5
  EXPECT_TRUE((CoordLess<2>{3}(a, b)));   // ymax 8 < 9
}

TEST(CornerOrderTest, ExtremeLessMinimisesLowsAndMaximisesHighs) {
  Record2 a{MakeRect(1, 5, 3, 8), 0};
  Record2 b{MakeRect(2, 4, 2.5, 9), 1};
  // Direction 0 (xmin): smaller xmin is more extreme.
  EXPECT_TRUE((ExtremeLess<2>{0}(a, b)));
  // Direction 2 (xmax): larger xmax is more extreme.
  EXPECT_TRUE((ExtremeLess<2>{2}(a, b)));
  // Direction 3 (ymax): larger ymax is more extreme -> b first.
  EXPECT_TRUE((ExtremeLess<2>{3}(b, a)));
}

TEST(CornerOrderTest, TiesBrokenByIdGiveStrictTotalOrder) {
  Record2 a{MakeRect(1, 1, 2, 2), 3};
  Record2 b{MakeRect(1, 1, 2, 2), 7};
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE((CoordLess<2>{c}(a, b)));
    EXPECT_FALSE((CoordLess<2>{c}(b, a)));
    EXPECT_FALSE((CoordLess<2>{c}(a, a)));  // irreflexive
    EXPECT_TRUE((ExtremeLess<2>{c}(a, b)));
    EXPECT_FALSE((ExtremeLess<2>{c}(b, a)));
  }
}

TEST(CornerOrderTest, BeforeThresholdConsistentWithCoordLess) {
  auto data = RandomRects<2>(300, 55);
  for (int c = 0; c < 4; ++c) {
    std::sort(data.begin(), data.end(), CoordLess<2>{c});
    // The threshold at rank r separates exactly r records.
    for (size_t r : {size_t{0}, size_t{1}, size_t{150}, size_t{299}}) {
      CoordThreshold t{data[r].rect.CornerCoord(c), data[r].id};
      size_t before = 0;
      for (const auto& rec : data) {
        if (BeforeThreshold(rec, c, t)) ++before;
      }
      EXPECT_EQ(before, r) << "dim " << c << " rank " << r;
    }
  }
}

TEST(CornerOrderTest, SortingByAllDirectionsIsAPermutation) {
  auto data = RandomRects<2>(500, 57);
  for (int c = 0; c < 4; ++c) {
    auto copy = data;
    std::sort(copy.begin(), copy.end(), ExtremeLess<2>{c});
    // Most-extreme-first: the front element attains the direction optimum.
    Real front = copy.front().rect.CornerCoord(c);
    for (const auto& rec : copy) {
      if (c < 2) {
        EXPECT_GE(rec.rect.CornerCoord(c), front);
      } else {
        EXPECT_LE(rec.rect.CornerCoord(c), front);
      }
    }
    EXPECT_EQ(copy.size(), data.size());
  }
}

TEST(CornerOrderTest, ThreeDimensionalDirections) {
  Record<3> a, b;
  a.rect.lo = {1, 2, 3};
  a.rect.hi = {4, 5, 6};
  a.id = 0;
  b.rect.lo = {2, 1, 4};
  b.rect.hi = {3, 6, 5};
  b.id = 1;
  EXPECT_TRUE((ExtremeLess<3>{0}(a, b)));  // xmin: 1 < 2
  EXPECT_TRUE((ExtremeLess<3>{1}(b, a)));  // ymin: 1 < 2
  EXPECT_TRUE((ExtremeLess<3>{2}(a, b)));  // zmin: 3 < 4
  EXPECT_TRUE((ExtremeLess<3>{3}(a, b)));  // xmax: 4 > 3
  EXPECT_TRUE((ExtremeLess<3>{4}(b, a)));  // ymax: 6 > 5
  EXPECT_TRUE((ExtremeLess<3>{5}(a, b)));  // zmax: 6 > 5
}

}  // namespace
}  // namespace prtree
