// Focused tests of the grid bulk loader (§2.1 "Efficient construction"),
// exercising its options and internal phases directly through
// GridEmitLeaves rather than through the full PR-tree build.

#include "core/grid_builder.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::RandomRects;

template <int D>
struct EmitSummary {
  size_t total_records = 0;
  size_t chunks = 0;
  size_t oversized = 0;
  std::map<DataId, int> seen;
};

template <int D>
EmitSummary<D> RunGrid(const std::vector<Record<D>>& data, WorkEnv env,
                       GridBuildOptions opts) {
  Stream<Record<D>> input(env.device);
  input.Append(data);
  input.Flush();
  EmitSummary<D> summary;
  GridEmitLeaves<D>(env, &input, opts,
                    [&](const std::vector<Record<D>>& chunk) {
                      ++summary.chunks;
                      summary.total_records += chunk.size();
                      if (chunk.size() > opts.capacity) ++summary.oversized;
                      for (const auto& r : chunk) summary.seen[r.id]++;
                    });
  return summary;
}

class GridOptionSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GridOptionSweepTest, EveryRecordEmittedExactlyOnce) {
  auto [n, z, mem_kb] = GetParam();
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<2>(n, n + z);
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.z_override = z;
  opts.memory_override = mem_kb << 10;
  auto summary = RunGrid<2>(data, env, opts);
  EXPECT_EQ(summary.total_records, n);
  EXPECT_EQ(summary.oversized, 0u);
  EXPECT_EQ(summary.seen.size(), n);  // no duplicates, no drops
  for (const auto& [id, count] : summary.seen) {
    ASSERT_EQ(count, 1) << "record " << id << " emitted " << count
                        << " times";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridOptionSweepTest,
    ::testing::Combine(::testing::Values(2000, 20000),
                       ::testing::Values(size_t{2}, size_t{4}, size_t{16}),
                       ::testing::Values(size_t{16}, size_t{64},
                                         size_t{512})));

TEST(GridBuilderTest, TinyMemoryForcesDeepRecursion) {
  // With a 16 KB budget over 40k records the builder must recurse through
  // several grid phases; the device must see multi-pass I/O but the
  // output must stay exact.
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<2>(40000, 99);
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.memory_override = 16u << 10;
  size_t live_before = dev.num_allocated();
  auto summary = RunGrid<2>(data, env, opts);
  EXPECT_EQ(summary.total_records, data.size());
  // All intermediate streams freed: only the caller's input stream
  // remains, and it is freed when it goes out of scope inside RunGrid.
  EXPECT_EQ(dev.num_allocated(), live_before);
}

TEST(GridBuilderTest, PrioritySizeOptionBoundsPriorityChunks) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<2>(20000, 5);
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.priority_size = 4;
  opts.memory_override = 64u << 10;
  Stream<Record2> input(&dev);
  input.Append(data);
  input.Flush();
  size_t total = 0;
  GridEmitLeaves<2>(env, &input, opts,
                    [&](const std::vector<Record2>& chunk) {
                      EXPECT_LE(chunk.size(), 13u);
                      total += chunk.size();
                    });
  EXPECT_EQ(total, data.size());
}

TEST(GridBuilderTest, SkewedDataDoesNotBreakSlabMath) {
  // Heavily duplicated coordinates stress the threshold tie-breaking: all
  // x equal, y highly skewed.
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  std::vector<Record2> data;
  Rng rng(7);
  for (DataId id = 0; id < 20000; ++id) {
    double y = std::pow(rng.Uniform(0, 1), 9);
    data.push_back(Record2{MakeRect(0.5, y, 0.5, y), id});
  }
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.memory_override = 32u << 10;
  auto summary = RunGrid<2>(data, env, opts);
  EXPECT_EQ(summary.total_records, data.size());
  EXPECT_EQ(summary.seen.size(), data.size());
}

TEST(GridBuilderTest, IdenticalRectanglesHandledByIdTieBreak) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  std::vector<Record2> data(15000,
                            Record2{MakeRect(0.3, 0.3, 0.4, 0.4), 0});
  for (size_t i = 0; i < data.size(); ++i) {
    data[i].id = static_cast<DataId>(i);
  }
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.memory_override = 32u << 10;
  auto summary = RunGrid<2>(data, env, opts);
  EXPECT_EQ(summary.total_records, data.size());
  EXPECT_EQ(summary.seen.size(), data.size());
}

TEST(GridBuilderTest, ThreeDimensionalGrid) {
  MemoryBlockDevice dev(4096);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<3>(20000, 11);
  GridBuildOptions opts;
  opts.capacity = NodeCapacity<3>(4096);
  opts.memory_override = 128u << 10;
  auto summary = RunGrid<3>(data, env, opts);
  EXPECT_EQ(summary.total_records, data.size());
  EXPECT_EQ(summary.seen.size(), data.size());
}

TEST(GridBuilderTest, IoWithinSortBoundTimesConstant) {
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 1u << 20};
  auto data = RandomRects<2>(30000, 13);
  Stream<Record2> input(&dev);
  input.Append(data);
  input.Flush();
  size_t blocks = input.num_blocks();
  dev.ResetStats();
  GridBuildOptions opts;
  opts.capacity = 13;
  opts.memory_override = 64u << 10;  // forces ~2 levels of grid recursion
  GridEmitLeaves<2>(env, &input, opts, [](const std::vector<Record2>&) {});
  // 4 sorts + per-phase count/filter/distribute scans over each level of
  // recursion; a generous constant catches runaway rescans.
  EXPECT_LE(dev.stats().Total(), 60u * blocks);
}

}  // namespace
}  // namespace prtree
