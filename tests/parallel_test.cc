#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace prtree {
namespace {

TEST(ParallelForTest, ChunksPartitionExactly) {
  const size_t kN = 103;  // deliberately not a multiple of the thread count
  std::vector<int> touched(kN, 0);
  std::vector<std::pair<size_t, size_t>> ranges(4);
  ParallelForChunks(0, kN, 4, [&](int t, size_t lo, size_t hi) {
    ranges[t] = {lo, hi};
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i], 1) << i;
  // Chunks are contiguous, in order, and cover [0, kN).
  size_t expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GE(hi, lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, kN);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::thread::id caller = std::this_thread::get_id();
  ParallelForChunks(0, 10, 1, [&](int t, size_t lo, size_t hi) {
    EXPECT_EQ(t, 0);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, 3, 8, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ParallelForTest, EmptyRangeStillCallsOnce) {
  int calls = 0;
  ParallelForChunks(5, 5, 4, [&](int, size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, hi);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<uint64_t> sum{0};
  const int kTasks = 100;
  for (int i = 1; i <= kTasks; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kTasks * (kTasks + 1) / 2));
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    // No Wait(): the destructor must let workers drain the queue.
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace prtree
