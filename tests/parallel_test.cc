#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <vector>

namespace prtree {
namespace {

TEST(ParallelForTest, ChunksPartitionExactly) {
  const size_t kN = 103;  // deliberately not a multiple of the thread count
  std::vector<int> touched(kN, 0);
  std::vector<std::pair<size_t, size_t>> ranges(4);
  ParallelForChunks(0, kN, 4, [&](int t, size_t lo, size_t hi) {
    ranges[t] = {lo, hi};
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i], 1) << i;
  // Chunks are contiguous, in order, and cover [0, kN).
  size_t expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_GE(hi, lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, kN);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::thread::id caller = std::this_thread::get_id();
  ParallelForChunks(0, 10, 1, [&](int t, size_t lo, size_t hi) {
    EXPECT_EQ(t, 0);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, 3, 8, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ParallelForTest, EmptyRangeStillCallsOnce) {
  int calls = 0;
  ParallelForChunks(5, 5, 4, [&](int, size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, hi);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<uint64_t> sum{0};
  const int kTasks = 100;
  for (int i = 1; i <= kTasks; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kTasks * (kTasks + 1) / 2));
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    // No Wait(): the destructor must let workers drain the queue.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskGroupTest, WaitForBlocksOnGroupOnly) {
  ThreadPool pool(3);
  std::atomic<int> grouped{0};
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 20; ++i) {
    pool.Submit(&group, [&grouped] { ++grouped; });
  }
  pool.Submit([] { /* ungrouped noise */ });
  pool.WaitFor(&group);
  EXPECT_EQ(grouped.load(), 20);
  pool.Wait();
}

TEST(TaskGroupTest, NestedForkJoinFromWorkersDoesNotDeadlock) {
  // The shape the parallel pseudo-PR-tree recursion uses: a worker task
  // submits subtasks to the same pool and WaitFor()s them.  With a plain
  // Wait this self-deadlocks; WaitFor must help drain the queue.
  ThreadPool pool(2);  // fewer threads than the fork tree has nodes
  std::atomic<int> leaves{0};
  // 3 levels of binary forks => 8 leaves.
  std::function<void(int)> fork = [&](int depth) {
    if (depth == 0) {
      ++leaves;
      return;
    }
    ThreadPool::TaskGroup group;
    pool.Submit(&group, [&fork, depth] { fork(depth - 1); });
    fork(depth - 1);
    pool.WaitFor(&group);
  };
  ThreadPool::TaskGroup root;
  pool.Submit(&root, [&fork] { fork(3); });
  pool.WaitFor(&root);
  EXPECT_EQ(leaves.load(), 8);
}

TEST(ParallelSortTest, MatchesStdSortIncludingDuplicates) {
  // Total order (value, index): the parallel result must be byte-identical
  // to std::sort even with heavy duplication — the property the
  // deterministic parallel bulk load rests on.
  struct Item {
    uint32_t key;
    uint32_t index;
  };
  auto less = [](const Item& a, const Item& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.index < b.index;
  };
  const size_t kN = 100'000;  // above kParallelSortGrain
  std::vector<Item> data(kN);
  uint32_t state = 12345;
  for (size_t i = 0; i < kN; ++i) {
    state = state * 1664525u + 1013904223u;
    data[i] = Item{state % 97, static_cast<uint32_t>(i)};  // many duplicates
  }
  std::vector<Item> expect = data;
  std::sort(expect.begin(), expect.end(), less);
  ThreadPool pool(4);
  ParallelSort(&pool, data.data(), data.size(), less);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(data[i].key, expect[i].key) << i;
    ASSERT_EQ(data[i].index, expect[i].index) << i;
  }
}

TEST(ParallelSortTest, NullPoolFallsBackToStdSort) {
  std::vector<int> data = {5, 3, 9, 1, 4};
  ParallelSort(static_cast<ThreadPool*>(nullptr), data.data(), data.size(),
               std::less<int>());
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

}  // namespace
}  // namespace prtree
