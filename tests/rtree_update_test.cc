#include "rtree/update.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rtree/validate.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

TEST(RTreeInsertTest, InsertIntoEmptyTree) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  upd.Insert(Record2{MakeRect(0.1, 0.1, 0.2, 0.2), 42});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 0);
  auto res = tree.QueryToVector(MakeRect(0, 0, 1, 1));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 42u);
  ASSERT_TRUE(ValidateTree(tree).ok());
}

class InsertManyTest
    : public ::testing::TestWithParam<std::tuple<SplitPolicy, size_t>> {};

TEST_P(InsertManyTest, RepeatedInsertionKeepsInvariantsAndAnswers) {
  auto [policy, block_size] = GetParam();
  MemoryBlockDevice dev(block_size);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree, policy);
  auto data = RandomRects<2>(1500, 79);
  for (const auto& rec : data) upd.Insert(rec);
  EXPECT_EQ(tree.size(), data.size());

  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());

  // Every record findable; window queries match brute force.
  Rng rng(83);
  for (int q = 0; q < 30; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.15);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, InsertManyTest,
    ::testing::Combine(::testing::Values(SplitPolicy::kQuadratic,
                                         SplitPolicy::kLinear),
                       ::testing::Values(size_t{512}, size_t{4096})));

TEST(RTreeInsertTest, SplitsRaiseHeightLogarithmically) {
  MemoryBlockDevice dev(512);  // fan-out 13
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  auto data = RandomRects<2>(2000, 89);
  for (const auto& rec : data) upd.Insert(rec);
  // Height must be within [log_13 N - 1, log_2 N]: sane split behaviour.
  EXPECT_GE(tree.height(), 2);
  EXPECT_LE(tree.height(), 12);
}

TEST(RTreeInsertTest, DuplicateRectanglesAllowed) {
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  Rect2 r = MakeRect(0.5, 0.5, 0.6, 0.6);
  for (uint32_t i = 0; i < 200; ++i) upd.Insert(Record2{r, i});
  auto res = tree.QueryToVector(r);
  EXPECT_EQ(res.size(), 200u);
  ASSERT_TRUE(ValidateTree(tree).ok());
}

TEST(RTreeDeleteTest, DeleteMissingReturnsFalse) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  EXPECT_FALSE(upd.Delete(Record2{MakeRect(0, 0, 1, 1), 7}));
  upd.Insert(Record2{MakeRect(0.1, 0.1, 0.2, 0.2), 1});
  EXPECT_FALSE(upd.Delete(Record2{MakeRect(0.1, 0.1, 0.2, 0.2), 2}));  // id
  Record2 other{MakeRect(0.1, 0.1, 0.2, 0.3), 1};  // rect mismatch
  EXPECT_FALSE(upd.Delete(other));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeDeleteTest, InsertThenDeleteAllLeavesEmptyTree) {
  MemoryBlockDevice dev(512);
  size_t baseline = dev.num_allocated();
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  auto data = RandomRects<2>(500, 97);
  for (const auto& rec : data) upd.Insert(rec);
  for (const auto& rec : data) EXPECT_TRUE(upd.Delete(rec));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(dev.num_allocated(), baseline);  // no leaked node blocks
}

TEST(RTreeDeleteTest, DeleteHalfKeepsOtherHalfQueryable) {
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  auto data = RandomRects<2>(1200, 101);
  for (const auto& rec : data) upd.Insert(rec);
  std::vector<Record2> kept;
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(upd.Delete(data[i])) << i;
    } else {
      kept.push_back(data[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  ASSERT_TRUE(ValidateTree(tree).ok());
  Rng rng(103);
  for (int q = 0; q < 30; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(kept, w));
  }
}

// Random mixed workload cross-checked against a flat reference model.
class UpdateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateFuzzTest, MixedInsertDeleteQueryAgreesWithModel) {
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  RTreeUpdater<2> upd(&tree);
  Rng rng(GetParam());
  std::map<DataId, Record2> model;
  DataId next_id = 0;

  for (int step = 0; step < 3000; ++step) {
    double dice = rng.Uniform(0, 1);
    if (dice < 0.55 || model.empty()) {
      Record2 rec;
      double side = rng.Uniform(0, 0.05);
      rec.rect.lo[0] = rng.Uniform(0, 1 - side);
      rec.rect.lo[1] = rng.Uniform(0, 1 - side);
      rec.rect.hi[0] = rec.rect.lo[0] + side;
      rec.rect.hi[1] = rec.rect.lo[1] + side;
      rec.id = next_id++;
      model[rec.id] = rec;
      upd.Insert(rec);
    } else if (dice < 0.85) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      EXPECT_TRUE(upd.Delete(it->second));
      model.erase(it);
    } else {
      Rect2 w = RandomWindow<2>(&rng, 0.3);
      std::vector<Record2> expect;
      for (const auto& [id, rec] : model) {
        if (rec.rect.Intersects(w)) expect.push_back(rec);
      }
      auto got = SortedIds(tree.QueryToVector(w));
      auto want = SortedIds(expect);
      ASSERT_EQ(got, want) << "step " << step;
    }
    EXPECT_EQ(tree.size(), model.size());
  }
  ASSERT_TRUE(ValidateTree(tree).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateFuzzTest,
                         ::testing::Values(1, 7, 13, 2024));

TEST(RTreeUpdateTest, PoolInvalidationKeepsCachedQueriesFresh) {
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  BufferPool pool(&dev, 4096);
  RTreeUpdater<2> upd(&tree, SplitPolicy::kQuadratic, 0.4, &pool);
  auto data = RandomRects<2>(800, 107);
  for (const auto& rec : data) {
    upd.Insert(rec);
    if (rec.id % 97 == 0) {
      // Interleave cached queries with updates; stale frames would lose
      // records.
      Rect2 w = MakeRect(0, 0, 1, 1);
      auto got = tree.QueryToVector(w, &pool);
      EXPECT_EQ(got.size(), rec.id + 1);
    }
  }
}

}  // namespace
}  // namespace prtree
