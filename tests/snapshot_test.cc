// Snapshot reads under concurrent writes: the epoch-based MVCC layer.
//
// Covers the three tentpole guarantees end to end:
//  * a reader holding a SnapshotHandle observes an immutable record set —
//    and byte-identical QueryStats — regardless of concurrent update
//    traffic (8-thread storm included);
//  * pages retired by a version swap sit in limbo exactly until the last
//    reader epoch drains, then return to the device free list (the device
//    allocation count provably returns to its baseline);
//  * the copy-on-write updaters (Guttman and R*) publish once per logical
//    op, so a pinned published root always names a complete tree.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_prtree.h"
#include "io/epoch.h"
#include "rtree/rstar.h"
#include "rtree/update.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::SortedIds;

bool SameStats(const QueryStats& a, const QueryStats& b) {
  return a.nodes_visited == b.nodes_visited &&
         a.internal_visited == b.internal_visited &&
         a.leaves_visited == b.leaves_visited && a.results == b.results;
}

// ---- EpochManager unit behaviour ---------------------------------------

TEST(EpochManagerTest, NoReadersDrainImmediately) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  std::vector<PageId> pages = {dev.Allocate(), dev.Allocate(),
                               dev.Allocate()};
  ASSERT_EQ(dev.num_allocated(), 3u);
  mgr.Retire(std::move(pages));
  // Nothing pinned: retirement degenerates to eager Free().
  EXPECT_EQ(mgr.limbo_pages(), 0u);
  EXPECT_EQ(dev.num_allocated(), 0u);
}

TEST(EpochManagerTest, ReaderHoldsLimboUntilRelease) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  std::vector<PageId> pages = {dev.Allocate(), dev.Allocate()};
  EpochGuard guard = mgr.Enter();
  mgr.Retire(std::move(pages));
  EXPECT_EQ(mgr.limbo_pages(), 2u);
  EXPECT_EQ(dev.num_allocated(), 2u);  // still reachable by the reader
  guard.Release();
  EXPECT_EQ(mgr.limbo_pages(), 0u);
  EXPECT_EQ(dev.num_allocated(), 0u);
}

TEST(EpochManagerTest, OverlappingReadersDrainInRetireOrder) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  PageId a = dev.Allocate();
  PageId b = dev.Allocate();

  EpochGuard g1 = mgr.Enter();
  mgr.Retire({a});  // stamped after g1: waits for it
  EpochGuard g2 = mgr.Enter();
  mgr.Retire({b});  // stamped after g2: waits for it too
  EXPECT_EQ(mgr.limbo_pages(), 2u);

  g1.Release();  // frees a; b still pinned by g2
  EXPECT_EQ(mgr.limbo_pages(), 1u);
  EXPECT_EQ(dev.num_allocated(), 1u);
  g2.Release();
  EXPECT_EQ(mgr.limbo_pages(), 0u);
  EXPECT_EQ(dev.num_allocated(), 0u);
}

TEST(EpochManagerTest, AttachedPoolFramesDieAtDrainNotRetire) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  BufferPool pool(&dev, 8);
  mgr.AttachPool(&pool);

  PageId page = dev.Allocate();
  std::vector<std::byte> old_bytes(dev.block_size(), std::byte{0xAA});
  ASSERT_TRUE(dev.Write(page, old_bytes.data()).ok());
  {
    PageGuard g;
    ASSERT_TRUE(pool.Pin(page, &g).ok());  // cache the frame
  }

  EpochGuard guard = mgr.Enter();
  mgr.Retire({page});
  {
    // Retired but not drained: copy-on-write means the bytes are still
    // accurate, so the cached frame must keep serving them.
    PageGuard g;
    ASSERT_TRUE(pool.Pin(page, &g).ok());
    EXPECT_EQ(g.data()[0], std::byte{0xAA});
  }
  guard.Release();  // drain: frame invalidated, id back on the free list

  PageId recycled = dev.Allocate();
  ASSERT_EQ(recycled, page);  // LIFO free list recycles the id
  std::vector<std::byte> new_bytes(dev.block_size(), std::byte{0xBB});
  ASSERT_TRUE(dev.Write(recycled, new_bytes.data()).ok());
  PageGuard g;
  ASSERT_TRUE(pool.Pin(recycled, &g).ok());
  EXPECT_EQ(g.data()[0], std::byte{0xBB});  // not the stale frame
}

// ---- copy-on-write updaters over a standalone RTree --------------------

TEST(CowUpdaterTest, PinnedPublishedRootIsFrozenAcrossInserts) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  RTree<2> tree(&dev);
  RTreeUpdater<2> updater(&tree, SplitPolicy::kQuadratic, 0.4,
                          /*pool=*/nullptr, &mgr);
  auto data = RandomRects<2>(120, 7);
  const Rect<2> everything = MakeRect(-1, -1, 2, 2);

  for (size_t i = 0; i < 60; ++i) updater.Insert(data[i]);
  EpochGuard guard = mgr.Enter();
  PageId pinned = tree.published_root();

  std::vector<Record2> before;
  QueryStats qs_before = tree.QueryFrom(pinned, everything,
                                        [&](const Record2& r) {
                                          before.push_back(r);
                                        });
  ASSERT_EQ(before.size(), 60u);

  for (size_t i = 60; i < data.size(); ++i) updater.Insert(data[i]);

  // The pinned root still names the complete 60-record tree, with the
  // exact same traversal counters.
  std::vector<Record2> after;
  QueryStats qs_after = tree.QueryFrom(pinned, everything,
                                       [&](const Record2& r) {
                                         after.push_back(r);
                                       });
  EXPECT_EQ(SortedIds(after), SortedIds(before));
  EXPECT_TRUE(SameStats(qs_after, qs_before));

  // The live tree sees all 120.
  EXPECT_EQ(tree.size(), data.size());
  auto live = SortedIds(tree.QueryToVector(everything));
  EXPECT_EQ(live, BruteForceQuery(data, everything));

  guard.Release();
  EXPECT_EQ(mgr.limbo_pages(), 0u);
}

TEST(CowUpdaterTest, RStarInsertGuttmanDeleteUnderSnapshot) {
  MemoryBlockDevice dev(512);
  EpochManager mgr(&dev);
  BufferPool pool(&dev, 64);
  RTree<2> tree(&dev);
  RStarUpdater<2> updater(&tree, 0.4, 0.3, &pool, &mgr);
  auto data = RandomRects<2>(150, 11);
  const Rect<2> everything = MakeRect(-1, -1, 2, 2);

  for (const auto& rec : data) updater.Insert(rec);
  size_t allocated_full = dev.num_allocated();

  EpochGuard guard = mgr.Enter();
  PageId pinned = tree.published_root();
  auto before = SortedIds(tree.QueryToVector(everything, &pool));
  ASSERT_EQ(before.size(), data.size());

  for (size_t i = 0; i < data.size(); i += 2) {
    EXPECT_TRUE(updater.Delete(data[i]));
  }

  std::vector<Record2> snap;
  tree.QueryFrom(pinned, everything,
                 [&](const Record2& r) { snap.push_back(r); }, &pool);
  EXPECT_EQ(SortedIds(snap), before);  // deletions invisible to the pin

  guard.Release();
  EXPECT_EQ(mgr.limbo_pages(), 0u);
  // Everything the delete storm shadowed or condensed has been reclaimed:
  // the device holds no more pages than the fully populated tree did.
  EXPECT_LE(dev.num_allocated(), allocated_full);

  std::vector<Record2> kept;
  for (size_t i = 1; i < data.size(); i += 2) kept.push_back(data[i]);
  EXPECT_EQ(SortedIds(tree.QueryToVector(everything, &pool)),
            BruteForceQuery(kept, everything));
}

// ---- DynamicPRTree snapshots -------------------------------------------

TEST(SnapshotTest, HandleFreezesRecordSetAndStatsUnderUpdateStorm) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;  // frequent flushes: lots of version churn
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  auto data = RandomRects<2>(400, 13);
  for (size_t i = 0; i < 200; ++i) index.Insert(data[i]);

  const Rect<2> everything = MakeRect(-1, -1, 2, 2);
  const Rect<2> corner = MakeRect(0.0, 0.0, 0.4, 0.4);
  auto snap = index.Snapshot();
  EXPECT_EQ(snap.size(), 200u);
  const auto frozen_ids = SortedIds(snap.QueryToVector(everything));
  std::vector<Record2> tmp;
  const QueryStats frozen_stats =
      snap.Query(corner, [&](const Record2& r) { tmp.push_back(r); });
  QueryStats knn_stats;
  const auto frozen_knn = snap.Knn({0.5, 0.5}, 10, &knn_stats);
  ASSERT_EQ(frozen_knn.size(), 10u);

  // 8 writer threads: 4 inserting the second half, 4 deleting the first.
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 200 + static_cast<size_t>(t); i < data.size(); i += 4) {
        index.Insert(data[i]);
      }
    });
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = static_cast<size_t>(t); i < 200; i += 4) {
        index.Delete(data[i]);
      }
    });
  }
  go.store(true);

  // Re-query the pinned snapshot while the storm runs: same ids, same
  // stats, every time.
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(SortedIds(snap.QueryToVector(everything)), frozen_ids);
    std::vector<Record2> hits;
    QueryStats qs =
        snap.Query(corner, [&](const Record2& r) { hits.push_back(r); });
    EXPECT_TRUE(SameStats(qs, frozen_stats));
    QueryStats ks;
    auto knn = snap.Knn({0.5, 0.5}, 10, &ks);
    ASSERT_EQ(knn.size(), frozen_knn.size());
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_EQ(knn[i].record.id, frozen_knn[i].record.id);
    }
    EXPECT_TRUE(SameStats(ks, knn_stats));
  }
  for (auto& th : writers) th.join();

  // Still frozen after the storm.
  EXPECT_EQ(SortedIds(snap.QueryToVector(everything)), frozen_ids);
  snap.Release();

  // The live view converged to inserts minus deletes.
  std::vector<Record2> expect;
  for (size_t i = 200; i < data.size(); ++i) expect.push_back(data[i]);
  EXPECT_EQ(index.size(), expect.size());
  EXPECT_EQ(SortedIds(index.QueryToVector(everything)),
            BruteForceQuery(expect, everything));
  EXPECT_EQ(index.epochs().active_readers(), 0u);
}

TEST(SnapshotTest, LimboPagesReturnToBaselineAfterLastReaderDrains) {
  MemoryBlockDevice dev(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  const size_t baseline = dev.num_allocated();
  auto data = RandomRects<2>(300, 17);
  for (const auto& rec : data) index.Insert(rec);
  ASSERT_GT(dev.num_allocated(), baseline);

  auto snap = index.Snapshot();
  const auto frozen = SortedIds(
      snap.QueryToVector(MakeRect(-1, -1, 2, 2)));
  ASSERT_EQ(frozen.size(), data.size());

  // Delete everything: the forest collapses and frees all of its pages —
  // but the snapshot still pins the full 300-record version.
  for (const auto& rec : data) ASSERT_TRUE(index.Delete(rec));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_GT(index.epochs().limbo_pages(), 0u);
  EXPECT_GT(dev.num_allocated(), baseline);
  EXPECT_EQ(SortedIds(snap.QueryToVector(MakeRect(-1, -1, 2, 2))), frozen);

  // Last reader drains: every limbo page provably back on the free list.
  snap.Release();
  EXPECT_EQ(index.epochs().limbo_pages(), 0u);
  EXPECT_EQ(dev.num_allocated(), baseline);
}

TEST(SnapshotTest, StatsByteIdenticalWithWritersOnAndOff) {
  // Build two identical forests; query one quiesced, the other mid-storm
  // through a pinned snapshot.  Counters must match exactly.
  auto data = RandomRects<2>(250, 19);
  auto extra = RandomRects<2>(250, 23);
  for (auto& r : extra) r.id += 1000;
  const Rect<2> window = MakeRect(0.2, 0.2, 0.7, 0.7);

  MemoryBlockDevice dev_a(512);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;
  DynamicPRTree<2> quiet(WorkEnv{&dev_a, 1u << 20}, opts);
  for (const auto& rec : data) quiet.Insert(rec);
  std::vector<Record2> hits_a;
  QueryStats qs_quiet =
      quiet.Query(window, [&](const Record2& r) { hits_a.push_back(r); });

  MemoryBlockDevice dev_b(512);
  DynamicPRTree<2> busy(WorkEnv{&dev_b, 1u << 20}, opts);
  for (const auto& rec : data) busy.Insert(rec);
  auto snap = busy.Snapshot();
  std::thread writer([&] {
    for (const auto& rec : extra) busy.Insert(rec);
  });
  std::vector<Record2> hits_b;
  QueryStats qs_busy =
      snap.Query(window, [&](const Record2& r) { hits_b.push_back(r); });
  writer.join();

  EXPECT_TRUE(SameStats(qs_busy, qs_quiet));
  EXPECT_EQ(SortedIds(hits_b), SortedIds(hits_a));
}

TEST(SnapshotTest, AttachedPoolSafeAcrossRebuilds) {
  MemoryBlockDevice dev(512);
  // Declared before the index: the pool must outlive the forest (the
  // epoch manager invalidates attached pools when draining).
  BufferPool pool(&dev, 128);
  DynamicPrTreeOptions opts;
  opts.buffer_capacity = 16;
  DynamicPRTree<2> index(WorkEnv{&dev, 1u << 20}, opts);
  index.AttachPool(&pool);

  auto data = RandomRects<2>(300, 29);
  const Rect<2> everything = MakeRect(-1, -1, 2, 2);
  std::vector<Record2> inserted;
  for (const auto& rec : data) {
    index.Insert(rec);
    inserted.push_back(rec);
    if (inserted.size() % 50 == 0) {
      // The pool is kept across rebuilds without any manual Clear():
      // drain-time invalidation keeps recycled ids from serving stale
      // frames.
      EXPECT_EQ(SortedIds(index.QueryToVector(everything, &pool)),
                BruteForceQuery(inserted, everything));
    }
  }
  EXPECT_EQ(SortedIds(index.QueryToVector(everything, &pool)),
            BruteForceQuery(data, everything));
}

}  // namespace
}  // namespace prtree
