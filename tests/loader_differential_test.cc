// Differential test across every bulk loader: on any dataset family, all
// five loaders must produce trees that answer every window query
// identically (and identically to brute force).  This is the strongest
// end-to-end guard in the suite — an index bug in any loader, the node
// format, the query engine or a generator breaks it.

#include <gtest/gtest.h>

#include "baselines/hilbert_rtree.h"
#include "baselines/str_rtree.h"
#include "baselines/tgs_rtree.h"
#include "core/prtree.h"
#include "rtree/validate.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomWindow;
using testing_util::SortedIds;

enum class Family { kSize, kAspect, kSkewed, kCluster, kTiger, kWorstCase };

std::vector<Record2> MakeData(Family family, size_t n) {
  switch (family) {
    case Family::kSize:
      return workload::MakeSize(n, 0.05, 5);
    case Family::kAspect:
      return workload::MakeAspect(n, 1000, 5);
    case Family::kSkewed:
      return workload::MakeSkewed(n, 7, 5);
    case Family::kCluster:
      return workload::MakeCluster(std::max<size_t>(4, n / 100), 100, 5);
    case Family::kTiger:
      return workload::MakeTigerLike(n, workload::TigerRegion::kWestern, 5);
    case Family::kWorstCase:
      return workload::MakeWorstCaseGrid(std::max<size_t>(4, n / 13), 13);
  }
  return {};
}

class LoaderDifferentialTest : public ::testing::TestWithParam<Family> {};

TEST_P(LoaderDifferentialTest, AllLoadersAnswerIdentically) {
  const size_t n = 6000;
  auto data = MakeData(GetParam(), n);
  MemoryBlockDevice dev(512);
  WorkEnv env{&dev, 256u << 10};  // small budget: external paths exercised

  RTree<2> pr(&dev), h(&dev), h4(&dev), tgs(&dev), str(&dev);
  PrTreeOptions popts;
  popts.force_grid = true;
  AbortIfError(BulkLoadPrTree<2>(env, data, &pr, popts));
  AbortIfError(BulkLoadHilbert(env, data, &h));
  AbortIfError(BulkLoadHilbert4D<2>(env, data, &h4));
  AbortIfError(BulkLoadTgs<2>(env, data, &tgs));
  AbortIfError(BulkLoadStr<2>(env, data, &str));

  for (const RTree<2>* tree : {&pr, &h, &h4, &tgs, &str}) {
    ASSERT_TRUE(ValidateTree(*tree).ok());
    ASSERT_EQ(tree->size(), data.size());
  }

  Rect2 extent = pr.Mbr();
  Rng rng(17);
  for (int q = 0; q < 25; ++q) {
    // Mix of windows scaled to the data extent and tiny stabs.
    Rect2 w;
    if (q % 3 == 0) {
      auto qs = workload::MakeSquareQueries(extent, 0.01, 1, 1000 + q);
      w = qs[0];
    } else {
      w = RandomWindow<2>(&rng, 0.1);
      for (int d = 0; d < 2; ++d) {
        double span = extent.Extent(d);
        w.lo[d] = extent.lo[d] + w.lo[d] * span;
        w.hi[d] = extent.lo[d] + w.hi[d] * span;
      }
    }
    auto expect = BruteForceQuery(data, w);
    EXPECT_EQ(SortedIds(pr.QueryToVector(w)), expect) << "PR q=" << q;
    EXPECT_EQ(SortedIds(h.QueryToVector(w)), expect) << "H q=" << q;
    EXPECT_EQ(SortedIds(h4.QueryToVector(w)), expect) << "H4 q=" << q;
    EXPECT_EQ(SortedIds(tgs.QueryToVector(w)), expect) << "TGS q=" << q;
    EXPECT_EQ(SortedIds(str.QueryToVector(w)), expect) << "STR q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, LoaderDifferentialTest,
                         ::testing::Values(Family::kSize, Family::kAspect,
                                           Family::kSkewed, Family::kCluster,
                                           Family::kTiger,
                                           Family::kWorstCase));

}  // namespace
}  // namespace prtree
