#include "geom/hilbert.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace prtree {
namespace {

// The classic first-order 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0)
// in index order 0..3 (up to the curve's fixed orientation convention:
// Skilling's curve starts along the first axis; what matters for an R-tree
// sort key is that adjacent indices are adjacent cells).
TEST(HilbertTest, FirstOrderCurveIsAHamiltonianPath) {
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> by_index;
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) {
      by_index[HilbertIndex2(x, y, 1)] = {x, y};
    }
  }
  ASSERT_EQ(by_index.size(), 4u);
  EXPECT_EQ(by_index.begin()->first, 0u);
  EXPECT_EQ(by_index.rbegin()->first, 3u);
  // Consecutive cells along the curve are grid neighbours.
  auto it = by_index.begin();
  auto prev = it++;
  for (; it != by_index.end(); ++it, ++prev) {
    uint32_t dx = it->second.first > prev->second.first
                      ? it->second.first - prev->second.first
                      : prev->second.first - it->second.first;
    uint32_t dy = it->second.second > prev->second.second
                      ? it->second.second - prev->second.second
                      : prev->second.second - it->second.second;
    EXPECT_EQ(dx + dy, 1u);
  }
}

class HilbertBijectionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HilbertBijectionTest, IndexIsBijectiveAndInvertible) {
  auto [n, bits] = GetParam();
  uint64_t side = 1ull << bits;
  uint64_t total = 1;
  for (int i = 0; i < n; ++i) total *= side;
  ASSERT_LE(total, 1ull << 16) << "test grid too large";

  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::vector<uint32_t> coords(n, 0);
  for (uint64_t cell = 0; cell < total; ++cell) {
    uint64_t rem = cell;
    for (int i = 0; i < n; ++i) {
      coords[i] = static_cast<uint32_t>(rem % side);
      rem /= side;
    }
    HilbertKey key = HilbertIndex(coords.data(), n, bits);
    EXPECT_TRUE(seen.insert({key.hi, key.lo}).second)
        << "duplicate key for cell " << cell;
    // Index must be < total (fits the grid).
    if (total <= (1ull << 63)) {
      EXPECT_EQ(key.hi, 0u);
      EXPECT_LT(key.lo, total);
    }
    // Round-trip through the inverse.
    std::vector<uint32_t> back(n, 0xFFFFFFFFu);
    HilbertInverse(key, back.data(), n, bits);
    EXPECT_EQ(back, coords);
  }
  EXPECT_EQ(seen.size(), total);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, HilbertBijectionTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 2),
                      std::make_tuple(2, 4), std::make_tuple(2, 6),
                      std::make_tuple(3, 2), std::make_tuple(3, 4),
                      std::make_tuple(4, 2), std::make_tuple(4, 3),
                      std::make_tuple(5, 2), std::make_tuple(6, 2)));

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbours4D) {
  // The Hilbert curve property in the dimension the 4-D Hilbert R-tree
  // uses: walk the whole 4-D curve on a 2^2 grid and check unit steps.
  const int n = 4, bits = 2;
  const uint64_t total = 1ull << (n * bits);
  std::vector<uint32_t> prev(n), cur(n);
  for (uint64_t idx = 0; idx < total; ++idx) {
    HilbertKey key{0, idx};
    HilbertInverse(key, cur.data(), n, bits);
    if (idx > 0) {
      uint32_t dist = 0;
      for (int i = 0; i < n; ++i) {
        dist += cur[i] > prev[i] ? cur[i] - prev[i] : prev[i] - cur[i];
      }
      EXPECT_EQ(dist, 1u) << "discontinuity at index " << idx;
    }
    prev = cur;
  }
}

TEST(HilbertTest, LargeBitDepthKeysAreDistinctAndOrdered) {
  // 31-bit 2-D keys (the packed-Hilbert sort key depth).
  uint64_t a = HilbertIndex2(0, 0, 31);
  uint64_t b = HilbertIndex2((1u << 31) - 1, (1u << 31) - 1, 31);
  uint64_t c = HilbertIndex2(12345, 678910, 31);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(HilbertTest, HilbertKeyOrdering) {
  HilbertKey a{0, 5};
  HilbertKey b{0, 7};
  HilbertKey c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (HilbertKey{0, 5}));
}

TEST(GridCoordTest, MapsRangeOntoGrid) {
  EXPECT_EQ(GridCoord(0.0, 0.0, 1.0, 4), 0u);
  EXPECT_EQ(GridCoord(1.0, 0.0, 1.0, 4), 15u);   // hi clamps to last cell
  EXPECT_EQ(GridCoord(0.5, 0.0, 1.0, 4), 8u);
  EXPECT_EQ(GridCoord(-3.0, 0.0, 1.0, 4), 0u);   // clamped below
  EXPECT_EQ(GridCoord(9.0, 0.0, 1.0, 4), 15u);   // clamped above
  EXPECT_EQ(GridCoord(0.7, 0.7, 0.7, 4), 0u);    // degenerate range
}

TEST(GridCoordTest, MonotoneInValue) {
  uint32_t prev = 0;
  for (int i = 0; i <= 100; ++i) {
    uint32_t g = GridCoord(i / 100.0, 0.0, 1.0, 10);
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_EQ(prev, (1u << 10) - 1);
}

TEST(HilbertKeysTest, CenterKeyGroupsNearbyRects) {
  Rect2 extent = MakeRect(0, 0, 1, 1);
  // Two rectangles with nearly identical centres get closer keys than a
  // far-away one (sanity, not a strict locality proof).
  HilbertKey near1 = HilbertCenterKey(MakeRect(0.10, 0.10, 0.11, 0.11), extent);
  HilbertKey near2 = HilbertCenterKey(MakeRect(0.10, 0.11, 0.11, 0.12), extent);
  HilbertKey far = HilbertCenterKey(MakeRect(0.90, 0.90, 0.91, 0.91), extent);
  auto dist = [](const HilbertKey& a, const HilbertKey& b) {
    return a.lo > b.lo ? a.lo - b.lo : b.lo - a.lo;  // hi is 0 at 31 bits
  };
  EXPECT_LT(dist(near1, near2), dist(near1, far));
}

TEST(HilbertKeysTest, CornerKeyDistinguishesExtent) {
  // Same centre, different extent: the 4-D key must differ (the 2-D centre
  // key cannot see the difference — that is the H vs H4 distinction, §1.1).
  Rect2 extent = MakeRect(0, 0, 1, 1);
  Rect2 small = MakeRect(0.49, 0.49, 0.51, 0.51);
  Rect2 large = MakeRect(0.30, 0.30, 0.70, 0.70);
  EXPECT_EQ(HilbertCenterKey(small, extent), HilbertCenterKey(large, extent));
  EXPECT_FALSE(HilbertCornerKey(small, extent) ==
               HilbertCornerKey(large, extent));
}

TEST(HilbertKeysTest, CornerKeyWorksFor3D) {
  Rect<3> extent;
  extent.lo = {0, 0, 0};
  extent.hi = {1, 1, 1};
  Rect<3> a;
  a.lo = {0.1, 0.2, 0.3};
  a.hi = {0.2, 0.3, 0.4};
  Rect<3> b = a;
  b.hi[2] = 0.9;
  EXPECT_FALSE(HilbertCornerKey<3>(a, extent) ==
               HilbertCornerKey<3>(b, extent));
}

}  // namespace
}  // namespace prtree
