// UringBlockDevice: the io_uring ReadBatch engine and its transparent
// pread fallback.
//
// io_uring availability is a runtime property of the kernel/container, so
// every test here must pass in BOTH modes — the suite asserts behaviour
// (bytes, statuses, counters, on-disk format), never the engine.  The
// fallback itself is exercised deterministically via
// UringDeviceOptions::force_fallback and the PRTREE_NO_URING environment
// variable, so a CI runner with io_uring still covers the no-io_uring
// path (and one without covers it twice).  CI runs this suite under every
// preset and once more with PRTREE_NO_URING=1.

#include "io/uring_block_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "io/buffer_pool.h"
#include "core/prtree.h"
#include "rtree/knn.h"
#include "rtree/persist.h"
#include "tests/test_util.h"

namespace prtree {
namespace {

using testing_util::SortedIds;

class UringBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/prtree_uring_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(static_cast<long>(getpid())) + ".dev";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<UringBlockDevice> Create(size_t block_size = 512,
                                           bool force_fallback = false,
                                           unsigned ring_entries = 64) {
    UringDeviceOptions opts;
    opts.file.block_size = block_size;
    opts.file.truncate = true;
    opts.ring_entries = ring_entries;
    opts.force_fallback = force_fallback;
    std::unique_ptr<UringBlockDevice> dev;
    AbortIfError(UringBlockDevice::Open(path_, opts, &dev));
    return dev;
  }

  /// Allocates `n` pages filled with a per-page pattern byte.
  std::vector<PageId> FillPages(BlockDevice* dev, int n) {
    std::vector<PageId> pages;
    std::vector<std::byte> block(dev->block_size());
    for (int i = 0; i < n; ++i) {
      PageId p = dev->Allocate();
      std::memset(block.data(), 0x20 + i, block.size());
      EXPECT_TRUE(dev->Write(p, block.data()).ok());
      pages.push_back(p);
    }
    return pages;
  }

  std::string path_;
};

TEST_F(UringBlockDeviceTest, ScalarReadWriteWorksInEitherMode) {
  auto dev = Create();
  std::printf("io_uring engine: %s\n",
              dev->ring_active() ? "active" : "unavailable, pread fallback");
  auto pages = FillPages(dev.get(), 3);
  std::vector<std::byte> buf(512);
  ASSERT_TRUE(dev->Read(pages[1], buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0x21});
  EXPECT_EQ(dev->stats().reads, 1u);
  EXPECT_EQ(dev->stats().prefetch_reads, 0u);
}

TEST_F(UringBlockDeviceTest, ReadBatchMatchesScalarReads) {
  auto dev = Create();
  const int kPages = 16;
  auto pages = FillPages(dev.get(), kPages);
  dev->ResetStats();

  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(kPages);
  for (int i = 0; i < kPages; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->ReadBatch(reqs.data(), reqs.size()).ok());
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(reqs[i].status.ok());
    std::vector<std::byte> expect(512);
    ASSERT_TRUE(dev->Read(pages[i], expect.data()).ok());
    EXPECT_EQ(std::memcmp(bufs[i].data(), expect.data(), 512), 0)
        << "page " << pages[i];
  }
  // One demand read per batched request, exactly as scalar reads charge
  // (the verification reads above added another kPages).
  EXPECT_EQ(dev->stats().reads, static_cast<uint64_t>(2 * kPages));
  EXPECT_EQ(dev->stats().prefetch_reads, 0u);
}

TEST_F(UringBlockDeviceTest, PrefetchKindChargesThePrefetchCounter) {
  auto dev = Create();
  auto pages = FillPages(dev.get(), 4);
  dev->ResetStats();
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(4);
  for (int i = 0; i < 4; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(
      dev->ReadBatch(reqs.data(), reqs.size(), ReadKind::kPrefetch).ok());
  EXPECT_EQ(dev->stats().reads, 0u);
  EXPECT_EQ(dev->stats().prefetch_reads, 4u);
  EXPECT_EQ(bufs[2][0], std::byte{0x22});
}

TEST_F(UringBlockDeviceTest, ForcedFallbackIsByteAndCounterIdentical) {
  // Run the same sequence through a forced-fallback device and (when the
  // kernel allows) a ring-backed one: bytes and stats must be identical —
  // the engine may only change wall-clock.
  auto run = [&](bool force) {
    auto dev = Create(512, force);
    EXPECT_TRUE(!force || !dev->ring_active());
    auto pages = FillPages(dev.get(), 8);
    dev->ResetStats();
    std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(512));
    std::vector<BlockReadRequest> reqs(8);
    for (int i = 0; i < 8; ++i) {
      reqs[i].page = pages[i];
      reqs[i].buf = bufs[i].data();
    }
    EXPECT_TRUE(dev->ReadBatch(reqs.data(), reqs.size()).ok());
    IoStats io = dev->stats();
    std::vector<std::byte> firsts;
    for (auto& b : bufs) firsts.push_back(b[0]);
    return std::make_tuple(io.reads, io.writes, firsts);
  };
  auto fallback = run(true);
  auto engine = run(false);
  EXPECT_EQ(fallback, engine);
}

TEST_F(UringBlockDeviceTest, EnvVarForcesTheFallback) {
  ::setenv("PRTREE_NO_URING", "1", 1);
  auto dev = Create();
  ::unsetenv("PRTREE_NO_URING");
  EXPECT_FALSE(dev->ring_active());
  // The fallback must engage cleanly: same semantics, batched reads
  // included.
  auto pages = FillPages(dev.get(), 4);
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(4);
  for (int i = 0; i < 4; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->ReadBatch(reqs.data(), reqs.size()).ok());
  EXPECT_EQ(bufs[3][0], std::byte{0x23});
}

TEST_F(UringBlockDeviceTest, BatchLargerThanRingDepthIsChunked) {
  auto dev = Create(512, /*force_fallback=*/false, /*ring_entries=*/2);
  const int kPages = 33;  // forces many chunks through a depth-2 ring
  auto pages = FillPages(dev.get(), kPages);
  dev->ResetStats();
  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(kPages);
  for (int i = 0; i < kPages; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->ReadBatch(reqs.data(), reqs.size()).ok());
  for (int i = 0; i < kPages; ++i) {
    EXPECT_EQ(bufs[i][0], static_cast<std::byte>(0x20 + i)) << i;
  }
  EXPECT_EQ(dev->stats().reads, static_cast<uint64_t>(kPages));
}

TEST_F(UringBlockDeviceTest, PerRequestFailuresDoNotPoisonTheBatch) {
  auto dev = Create();
  auto pages = FillPages(dev.get(), 4);
  PageId dead = dev->Allocate();
  dev->Free(dead);
  dev->InjectReadFault(pages[2]);
  dev->ResetStats();

  std::vector<std::vector<std::byte>> bufs(5, std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(5);
  for (int i = 0; i < 4; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  reqs[4].page = dead;
  reqs[4].buf = bufs[4].data();

  Status st = dev->ReadBatch(reqs.data(), reqs.size());
  EXPECT_FALSE(st.ok());  // first failure is reported...
  EXPECT_TRUE(reqs[0].status.ok());  // ...but the rest were still served
  EXPECT_TRUE(reqs[1].status.ok());
  EXPECT_FALSE(reqs[2].status.ok());  // injected fault
  EXPECT_TRUE(reqs[3].status.ok());
  EXPECT_FALSE(reqs[4].status.ok());  // unallocated page
  EXPECT_EQ(bufs[3][0], std::byte{0x23});
  // Only successes are charged.
  EXPECT_EQ(dev->stats().reads, 3u);
}

TEST_F(UringBlockDeviceTest, SharesTheOnDiskFormatWithFileBlockDevice) {
  // Write through uring, sync, reopen with the plain file backend (and the
  // reverse direction below): one format, two engines.
  std::vector<PageId> pages;
  {
    auto dev = Create();
    pages = FillPages(dev.get(), 4);
    dev->Free(pages[1]);
    ASSERT_TRUE(dev->SetUserMeta("uring", 5).ok());
    ASSERT_TRUE(dev->Sync().ok());
  }
  {
    FileDeviceOptions opts;
    opts.must_exist = true;
    std::unique_ptr<FileBlockDevice> dev;
    ASSERT_TRUE(FileBlockDevice::Open(path_, opts, &dev).ok());
    EXPECT_EQ(dev->num_allocated(), 3u);
    char meta[8] = {};
    EXPECT_EQ(dev->GetUserMeta(meta, sizeof(meta)), 5u);
    EXPECT_STREQ(meta, "uring");
    std::vector<std::byte> buf(512);
    ASSERT_TRUE(dev->Read(pages[3], buf.data()).ok());
    EXPECT_EQ(buf[0], std::byte{0x23});
    // LIFO free list continues across the engine switch.
    EXPECT_EQ(dev->Allocate(), pages[1]);
    ASSERT_TRUE(dev->Sync().ok());
  }
  {
    UringDeviceOptions opts;
    opts.file.must_exist = true;
    std::unique_ptr<UringBlockDevice> dev;
    ASSERT_TRUE(UringBlockDevice::Open(path_, opts, &dev).ok());
    EXPECT_EQ(dev->num_allocated(), 4u);
    std::vector<std::byte> buf(512);
    ASSERT_TRUE(dev->Read(pages[0], buf.data()).ok());
    EXPECT_EQ(buf[0], std::byte{0x20});
  }
}

TEST_F(UringBlockDeviceTest, DirectIoRequestStillReadsCorrectBytes) {
  UringDeviceOptions opts;
  opts.file.block_size = 512;
  opts.file.truncate = true;
  opts.file.direct_io = true;  // best effort; either outcome must work
  std::unique_ptr<UringBlockDevice> dev;
  AbortIfError(UringBlockDevice::Open(path_, opts, &dev));
  auto pages = FillPages(dev.get(), 6);
  std::vector<std::vector<std::byte>> bufs(6, std::vector<std::byte>(512));
  std::vector<BlockReadRequest> reqs(6);
  for (int i = 0; i < 6; ++i) {
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->ReadBatch(reqs.data(), reqs.size()).ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(bufs[i][0], static_cast<std::byte>(0x20 + i)) << i;
  }
}

// The acceptance-shaped end-to-end: a PR-tree on the uring device, queried
// through a small pool with readahead — identical answers and visit
// counters to the scalar path, with the prefetch traffic showing up only
// in prefetch_reads.
TEST_F(UringBlockDeviceTest, TreeQueriesWithReadaheadMatchScalar) {
  auto dev = Create(/*block_size=*/512);
  auto data = testing_util::RandomRects<2>(8000, 7);
  RTree<2> tree(dev.get());
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{dev.get(), 4u << 20}, data, &tree));
  TreeStats ts = tree.ComputeStats();

  Rect2 window = MakeRect(0.2, 0.3, 0.5, 0.6);
  BufferPool scalar_pool(dev.get(), ts.num_nodes / 8 + 4);
  QueryStats scalar_stats;
  auto scalar_ids = SortedIds(tree.QueryToVector(window, &scalar_pool));
  scalar_stats = tree.Query(window, [](const Record2&) {}, &scalar_pool);

  BufferPool ahead_pool(dev.get(), ts.num_nodes / 8 + 4);
  ahead_pool.set_readahead(true);
  dev->ResetStats();
  auto ahead_ids = SortedIds(tree.QueryToVector(window, &ahead_pool));
  QueryStats ahead_stats =
      tree.Query(window, [](const Record2&) {}, &ahead_pool);
  IoStats io = dev->stats();

  EXPECT_EQ(ahead_ids, scalar_ids);
  EXPECT_EQ(ahead_stats.nodes_visited, scalar_stats.nodes_visited);
  EXPECT_EQ(ahead_stats.leaves_visited, scalar_stats.leaves_visited);
  EXPECT_EQ(ahead_stats.results, scalar_stats.results);
  EXPECT_GT(io.prefetch_reads, 0u);  // the frontier was actually prefetched
  EXPECT_GT(ahead_pool.prefetch_useful(), 0u);

  // kNN through the same readahead pool agrees with the pool-less search.
  auto plain = KnnSearch<2>(tree, {0.4, 0.4}, 5);
  auto pooled = KnnSearch<2>(tree, {0.4, 0.4}, 5, nullptr, &ahead_pool);
  ASSERT_EQ(pooled.size(), plain.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(pooled[i].record.id, plain[i].record.id);
  }
}

TEST_F(UringBlockDeviceTest, WriteBatchMatchesScalarWritesInEitherMode) {
  auto dev = Create();
  const int kPages = 16;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) pages.push_back(dev->Allocate());
  dev->ResetStats();

  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(512));
  std::vector<BlockWriteRequest> reqs(kPages);
  for (int i = 0; i < kPages; ++i) {
    std::memset(bufs[i].data(), 0x50 + i, 512);
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->WriteBatch(reqs.data(), reqs.size()).ok());
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(reqs[i].status.ok()) << "page " << pages[i];
  }
  // One demand write per batched request, one audit tick per submission —
  // the same accounting whether the ring engine or the scalar loop served
  // the batch.
  EXPECT_EQ(dev->stats().writes, static_cast<uint64_t>(kPages));
  EXPECT_EQ(dev->stats().write_batches, 1u);

  std::vector<std::byte> r(512);
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(dev->Read(pages[i], r.data()).ok());
    EXPECT_EQ(std::memcmp(r.data(), bufs[i].data(), 512), 0)
        << "page " << pages[i];
  }
}

TEST_F(UringBlockDeviceTest, WriteBatchPartialFailuresNeverHarderThanScalar) {
  // The same mixed sequence — live pages, an unallocated page, an injected
  // write fault — through WriteBatch on one device and scalar Writes on a
  // twin: identical per-request outcomes, identical final bytes, identical
  // demand counters.
  const std::string twin_path = path_ + ".twin";
  std::remove(twin_path.c_str());
  auto run = [&](const std::string& p, bool batch) {
    UringDeviceOptions opts;
    opts.file.block_size = 512;
    opts.file.truncate = true;
    std::unique_ptr<UringBlockDevice> dev;
    AbortIfError(UringBlockDevice::Open(p, opts, &dev));
    PageId a = dev->Allocate();
    PageId b = dev->Allocate();
    PageId c = dev->Allocate();
    dev->InjectWriteFault(b);
    dev->ResetStats();

    std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(512));
    for (int i = 0; i < 4; ++i) std::memset(bufs[i].data(), 0x60 + i, 512);
    PageId targets[4] = {a, b, PageId{9999}, c};
    std::vector<bool> ok(4);
    if (batch) {
      std::vector<BlockWriteRequest> reqs(4);
      for (int i = 0; i < 4; ++i) {
        reqs[i].page = targets[i];
        reqs[i].buf = bufs[i].data();
      }
      EXPECT_FALSE(dev->WriteBatch(reqs.data(), reqs.size()).ok());
      for (int i = 0; i < 4; ++i) ok[i] = reqs[i].status.ok();
    } else {
      for (int i = 0; i < 4; ++i) {
        ok[i] = dev->Write(targets[i], bufs[i].data()).ok();
      }
    }
    uint64_t writes = dev->stats().writes;
    std::vector<std::byte> first_bytes;
    std::vector<std::byte> r(512);
    for (PageId p2 : {a, c}) {
      EXPECT_TRUE(dev->Read(p2, r.data()).ok());
      first_bytes.push_back(r[0]);
    }
    return std::make_tuple(ok, writes, first_bytes);
  };
  auto batched = run(path_, true);
  auto scalar = run(twin_path, false);
  EXPECT_EQ(std::get<0>(batched),
            (std::vector<bool>{true, false, false, true}));
  EXPECT_EQ(batched, scalar);
  std::remove(twin_path.c_str());
}

TEST_F(UringBlockDeviceTest, WriteBatchLargerThanRingDepthIsChunked) {
  auto dev = Create(512, /*force_fallback=*/false, /*ring_entries=*/2);
  const int kPages = 33;  // forces many chunks through a depth-2 ring
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) pages.push_back(dev->Allocate());
  dev->ResetStats();

  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(512));
  std::vector<BlockWriteRequest> reqs(kPages);
  for (int i = 0; i < kPages; ++i) {
    std::memset(bufs[i].data(), 0x20 + i, 512);
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->WriteBatch(reqs.data(), reqs.size()).ok());
  EXPECT_EQ(dev->stats().writes, static_cast<uint64_t>(kPages));
  std::vector<std::byte> r(512);
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(dev->Read(pages[i], r.data()).ok());
    EXPECT_EQ(r[0], static_cast<std::byte>(0x20 + i)) << i;
  }
}

TEST_F(UringBlockDeviceTest, UnregisteredRingMatchesRegisteredBytes) {
  // force_unregistered keeps the ring but skips buffer/file registration:
  // plain READ/WRITE opcodes instead of the _FIXED variants, same bytes,
  // same counters.
  auto run = [&](bool force_unregistered) {
    std::string p = path_ + (force_unregistered ? ".plain" : ".fixed");
    std::remove(p.c_str());
    UringDeviceOptions opts;
    opts.file.block_size = 512;
    opts.file.truncate = true;
    opts.force_unregistered = force_unregistered;
    std::unique_ptr<UringBlockDevice> dev;
    AbortIfError(UringBlockDevice::Open(p, opts, &dev));
    if (force_unregistered) {
      EXPECT_FALSE(dev->registered());
    }

    std::vector<PageId> pages;
    for (int i = 0; i < 8; ++i) pages.push_back(dev->Allocate());
    dev->ResetStats();
    std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(512));
    std::vector<BlockWriteRequest> wreqs(8);
    for (int i = 0; i < 8; ++i) {
      std::memset(bufs[i].data(), 0x70 + i, 512);
      wreqs[i].page = pages[i];
      wreqs[i].buf = bufs[i].data();
    }
    EXPECT_TRUE(dev->WriteBatch(wreqs.data(), wreqs.size()).ok());
    std::vector<BlockReadRequest> rreqs(8);
    for (int i = 0; i < 8; ++i) {
      rreqs[i].page = pages[i];
      rreqs[i].buf = bufs[i].data();
    }
    EXPECT_TRUE(dev->ReadBatch(rreqs.data(), rreqs.size()).ok());
    IoStats io = dev->stats();
    std::vector<std::byte> firsts;
    for (auto& b : bufs) firsts.push_back(b[0]);
    std::remove(p.c_str());
    return std::make_tuple(io.reads, io.writes, io.write_batches, firsts);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(UringBlockDeviceTest, DirectIoWriteBatchStillWritesCorrectBytes) {
  UringDeviceOptions opts;
  opts.file.block_size = 512;
  opts.file.truncate = true;
  opts.file.direct_io = true;  // best effort; either outcome must work
  std::unique_ptr<UringBlockDevice> dev;
  AbortIfError(UringBlockDevice::Open(path_, opts, &dev));
  const int kPages = 6;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) pages.push_back(dev->Allocate());
  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(512));
  std::vector<BlockWriteRequest> reqs(kPages);
  for (int i = 0; i < kPages; ++i) {
    std::memset(bufs[i].data(), 0x20 + i, 512);
    reqs[i].page = pages[i];
    reqs[i].buf = bufs[i].data();
  }
  ASSERT_TRUE(dev->WriteBatch(reqs.data(), reqs.size()).ok());
  std::vector<std::byte> r(512);
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(dev->Read(pages[i], r.data()).ok());
    EXPECT_EQ(r[0], static_cast<std::byte>(0x20 + i)) << i;
  }
}

}  // namespace
}  // namespace prtree
