#include "rtree/rstar.h"

#include <gtest/gtest.h>

#include "core/prtree.h"
#include "rtree/validate.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace prtree {
namespace {

using testing_util::BruteForceQuery;
using testing_util::RandomRects;
using testing_util::RandomWindow;
using testing_util::SortedIds;

TEST(RStarTest, InsertIntoEmptyTree) {
  MemoryBlockDevice dev(4096);
  RTree<2> tree(&dev);
  RStarUpdater<2> upd(&tree);
  upd.Insert(Record2{MakeRect(0.1, 0.1, 0.2, 0.2), 5});
  EXPECT_EQ(tree.size(), 1u);
  auto res = tree.QueryToVector(MakeRect(0, 0, 1, 1));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 5u);
}

class RStarInsertTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(RStarInsertTest, RepeatedInsertionKeepsInvariantsAndAnswers) {
  auto [block_size, seed] = GetParam();
  MemoryBlockDevice dev(block_size);
  RTree<2> tree(&dev);
  RStarUpdater<2> upd(&tree);
  auto data = RandomRects<2>(1500, seed);
  for (const auto& rec : data) upd.Insert(rec);
  EXPECT_EQ(tree.size(), data.size());

  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());

  Rng rng(seed + 1);
  for (int q = 0; q < 30; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.15);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RStarInsertTest,
    ::testing::Combine(::testing::Values(size_t{512}, size_t{4096}),
                       ::testing::Values(3, 17, 2025)));

TEST(RStarTest, InsertDeleteMixAgainstModel) {
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  RStarUpdater<2> upd(&tree);
  Rng rng(11);
  std::vector<Record2> live;
  DataId next = 0;
  for (int step = 0; step < 2000; ++step) {
    if (rng.Uniform(0, 1) < 0.6 || live.empty()) {
      Record2 rec;
      double side = rng.Uniform(0, 0.05);
      rec.rect.lo[0] = rng.Uniform(0, 1 - side);
      rec.rect.lo[1] = rng.Uniform(0, 1 - side);
      rec.rect.hi[0] = rec.rect.lo[0] + side;
      rec.rect.hi[1] = rec.rect.lo[1] + side;
      rec.id = next++;
      live.push_back(rec);
      upd.Insert(rec);
    } else {
      size_t i = rng.UniformInt(0, live.size() - 1);
      EXPECT_TRUE(upd.Delete(live[i]));
      live[i] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(tree.size(), live.size());
  }
  Rect2 all = MakeRect(-1, -1, 2, 2);
  EXPECT_EQ(SortedIds(tree.QueryToVector(all)), BruteForceQuery(live, all));
  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());
}

TEST(RStarTest, QueryQualityAtLeastComparableToGuttman) {
  // R*'s overlap-minimising insertion should not be grossly worse than
  // Guttman's on clustered data (it is usually better); this guards
  // against pathological regressions in the split/reinsert logic.
  MemoryBlockDevice dev_r(4096), dev_g(4096);
  RTree<2> rstar_tree(&dev_r), guttman_tree(&dev_g);
  RStarUpdater<2> rstar(&rstar_tree);
  RTreeUpdater<2> guttman(&guttman_tree);
  auto data = workload::MakeCluster(50, 400, 3);  // 20k clustered points
  for (const auto& rec : data) {
    rstar.Insert(rec);
    guttman.Insert(rec);
  }
  Rng rng(5);
  uint64_t leaves_r = 0, leaves_g = 0;
  for (int q = 0; q < 50; ++q) {
    double x = rng.Uniform(0, 0.9);
    Rect2 w = MakeRect(x, 0.4999, x + 0.1, 0.5001);
    leaves_r += rstar_tree.Query(w, [](const Record2&) {}).leaves_visited;
    leaves_g += guttman_tree.Query(w, [](const Record2&) {}).leaves_visited;
  }
  EXPECT_LE(leaves_r, leaves_g * 2);
}

TEST(RStarTest, ForcedReinsertHappensBeforeSplits) {
  // With capacity 13 and 200 inserts, reinsertion must trigger; the tree
  // must stay valid throughout and end up reasonably packed (reinsertion
  // tends to increase utilisation vs pure splitting).
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  RStarUpdater<2> upd(&tree);
  auto data = RandomRects<2>(800, 23);
  for (const auto& rec : data) upd.Insert(rec);
  TreeStats ts = tree.ComputeStats();
  EXPECT_GT(ts.utilization, 0.55);  // dynamic R-trees: 50-70% (§1.1)
  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());
}

TEST(RStarTest, UpdatesOnBulkLoadedPrTree) {
  // §4: "The PR-tree can be updated using any known update heuristic".
  MemoryBlockDevice dev(512);
  RTree<2> tree(&dev);
  auto data = RandomRects<2>(2000, 29);
  std::vector<Record2> base(data.begin(), data.begin() + 1500);
  std::vector<Record2> extra(data.begin() + 1500, data.end());
  AbortIfError(BulkLoadPrTree<2>(WorkEnv{&dev, 4u << 20}, base, &tree));
  RStarUpdater<2> upd(&tree);
  for (const auto& rec : extra) upd.Insert(rec);
  EXPECT_EQ(tree.size(), data.size());
  ValidateOptions opts;
  opts.min_entries = 1;
  ASSERT_TRUE(ValidateTree(tree, opts).ok());
  Rng rng(31);
  for (int q = 0; q < 20; ++q) {
    Rect2 w = RandomWindow<2>(&rng, 0.2);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

TEST(RStarTest, ThreeDimensional) {
  MemoryBlockDevice dev(4096);
  RTree<3> tree(&dev);
  RStarUpdater<3> upd(&tree);
  auto data = RandomRects<3>(1000, 37);
  for (const auto& rec : data) upd.Insert(rec);
  ASSERT_TRUE(ValidateTree(tree, {.min_entries = 1}).ok());
  Rng rng(41);
  for (int q = 0; q < 10; ++q) {
    Rect<3> w = RandomWindow<3>(&rng, 0.3);
    EXPECT_EQ(SortedIds(tree.QueryToVector(w)), BruteForceQuery(data, w));
  }
}

}  // namespace
}  // namespace prtree
